//! Distributed quantum Monte-Carlo amplification (Theorem 3).

use crate::grover::GroverMode;
use crate::mcalg::MonteCarloAlgorithm;
use crate::search::{DistributedSearch, SearchReport};

/// The outcome of amplifying a Monte-Carlo algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplificationReport {
    /// The amplified decision: `true` iff a rejecting run was found (and
    /// re-verified classically).
    pub rejected: bool,
    /// The seed of the verified rejecting run, when `rejected`.
    /// Re-running the base algorithm with this seed reproduces the
    /// rejection — the amplified algorithm's "witness".
    pub witness_seed: Option<u64>,
    /// CONGEST rounds charged under the Theorem 3 cost model:
    /// `polylog(1/δ) · (D + T) / √ε` realized as
    /// `(iterations + verifications) · (T + D)` over the amplification
    /// repetitions.
    pub quantum_rounds: u64,
    /// What the *classical* amplification would have cost:
    /// `Θ(1/ε)` repetitions of `T + D` rounds. For the quadratic-speedup
    /// experiments.
    pub classical_rounds_baseline: u64,
    /// Total Grover iterations.
    pub iterations: u64,
    /// Classical runs of the base algorithm spent by the simulator.
    pub classical_evals: u64,
    /// Size of the seed space `M ≈ c/ε` searched.
    pub seed_space: usize,
}

/// Distributed quantum Monte-Carlo amplification (Theorem 3).
///
/// Wraps any [`MonteCarloAlgorithm`] `A` with one-sided success
/// probability `ε` and round complexity `T(n, D)` into a quantum
/// algorithm with one-sided error `δ` and round complexity
/// `polylog(1/δ) · (D + T(n, D)) / √ε`:
///
/// * `Setup` = "run `A` with a random seed, broadcast whether any node
///   rejected to the leader" — `T + O(D)` rounds;
/// * `Checking` = trivial (the leader inspects the bit) — 0 rounds;
/// * Grover search over the seed space amplifies the probability of
///   sampling a rejecting seed quadratically faster than classical
///   repetition.
///
/// One-sidedness is preserved: if `A` never rejects (the input satisfies
/// the predicate), no seed is marked and the amplifier accepts with
/// probability 1.
///
/// ```
/// use congest_quantum::{FnAlgorithm, McOutcome, MonteCarloAlgorithm, MonteCarloAmplifier};
/// // A fake detector that rejects on 1/64 of its seeds in 5 rounds.
/// let alg = FnAlgorithm::new(
///     |seed| McOutcome { rejected: seed % 64 == 3, rounds: 5 },
///     5,
///     1.0 / 64.0,
/// );
/// let amp = MonteCarloAmplifier::new(0.01).with_diameter(4);
/// let report = amp.amplify(&alg, 7);
/// assert!(report.rejected);
/// let w = report.witness_seed.unwrap();
/// assert!(alg.run(w).rejected, "witness seed reproduces the rejection");
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarloAmplifier {
    delta: f64,
    diameter: u64,
    mode: GroverMode,
    seed_space_factor: f64,
}

impl MonteCarloAmplifier {
    /// Creates an amplifier targeting one-sided error `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < δ < 1`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        MonteCarloAmplifier {
            delta,
            diameter: 0,
            mode: GroverMode::Analytic,
            seed_space_factor: 3.0,
        }
    }

    /// Sets the network diameter `D` charged per Setup execution
    /// (the broadcast of the reject bit to the leader). Default 0 —
    /// appropriate after diameter reduction, where components have
    /// diameter `O(k log n)` accounted separately.
    pub fn with_diameter(mut self, diameter: u64) -> Self {
        self.diameter = diameter;
        self
    }

    /// Selects the Grover simulation mode (default analytic; use
    /// [`GroverMode::Sampled`] when `3/ε` classical runs are too many).
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the seed-space oversampling factor `c` in `M = ⌈c/ε⌉`
    /// (default 3): with `c/ε` independent seeds, at least one rejects
    /// with probability `≥ 1 - e^{-c}` when the rejection probability is
    /// `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn with_seed_space_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "seed space factor must be ≥ 1");
        self.seed_space_factor = factor;
        self
    }

    /// The Theorem 3 round bound for parameters `(ε, T, D, δ)`:
    /// `⌈log₂(1/δ)⌉ · (D + T) / √ε` (the polylog realized as a single
    /// log factor, matching the repetition count actually executed).
    pub fn round_bound(&self, epsilon: f64, t: u64, d: u64) -> f64 {
        let reps = (1.0 / self.delta).log2().ceil().max(1.0);
        reps * (d + t) as f64 / epsilon.sqrt()
    }

    /// Amplifies `alg`, deriving all randomness from `master_seed`.
    pub fn amplify<A: MonteCarloAlgorithm>(
        &self,
        alg: &A,
        master_seed: u64,
    ) -> AmplificationReport {
        let epsilon = alg.success_probability();
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "algorithm must declare ε in (0,1]"
        );
        let dim = ((self.seed_space_factor / epsilon).ceil() as usize).max(2);
        let t_setup = alg.round_bound() + self.diameter;

        let search = DistributedSearch::new(t_setup, 0, self.delta).with_mode(self.mode);
        let mut measured_rounds_max: u64 = 0;
        let report: SearchReport = search.run(
            dim,
            |x| {
                let outcome = alg.run(congest_sim::derive_seed(master_seed, x as u64));
                measured_rounds_max = measured_rounds_max.max(outcome.rounds);
                outcome.rejected
            },
            congest_sim::derive_seed(master_seed, 0xA3F1),
        );

        let classical_reps = (self.seed_space_factor / epsilon).ceil() as u64;
        AmplificationReport {
            rejected: report.result.is_some(),
            witness_seed: report
                .result
                .map(|x| congest_sim::derive_seed(master_seed, x as u64)),
            quantum_rounds: report.rounds,
            classical_rounds_baseline: classical_reps * (alg.round_bound() + self.diameter).max(1),
            iterations: report.iterations,
            classical_evals: report.classical_evals,
            seed_space: dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcalg::{FnAlgorithm, McOutcome};

    fn fake_alg(period: u64, rounds: u64) -> FnAlgorithm<impl Fn(u64) -> McOutcome> {
        FnAlgorithm::new(
            move |seed| McOutcome {
                rejected: seed % period == 1,
                rounds,
            },
            rounds,
            1.0 / period as f64,
        )
    }

    #[test]
    fn amplification_finds_rare_rejection() {
        let alg = fake_alg(128, 4);
        let amp = MonteCarloAmplifier::new(0.05);
        let report = amp.amplify(&alg, 11);
        assert!(report.rejected);
        assert!(alg.run(report.witness_seed.unwrap()).rejected);
        assert_eq!(report.seed_space, 3 * 128);
    }

    #[test]
    fn one_sidedness_on_always_accepting_algorithm() {
        let alg = FnAlgorithm::new(
            |_| McOutcome {
                rejected: false,
                rounds: 2,
            },
            2,
            1.0 / 32.0,
        );
        for master in 0..10 {
            let report = MonteCarloAmplifier::new(0.1).amplify(&alg, master);
            assert!(!report.rejected, "must accept with probability 1");
            assert!(report.witness_seed.is_none());
        }
    }

    #[test]
    fn quadratic_speedup_vs_classical() {
        // ε = 1/1024: classical needs ~3·1024 runs, quantum ~√(3·1024)
        // iterations (times the same per-run cost).
        let alg = fake_alg(1024, 1);
        let amp = MonteCarloAmplifier::new(0.1);
        let mut q_total = 0u64;
        let mut c_total = 0u64;
        let trials = 10;
        for master in 0..trials {
            let r = amp.amplify(&alg, master);
            assert!(r.rejected);
            q_total += r.quantum_rounds;
            c_total += r.classical_rounds_baseline;
        }
        let q_avg = q_total as f64 / trials as f64;
        let c_avg = c_total as f64 / trials as f64;
        assert!(
            q_avg * 4.0 < c_avg,
            "quantum {q_avg} should be well below classical {c_avg}"
        );
    }

    #[test]
    fn diameter_term_charged() {
        let alg = fake_alg(16, 10);
        let without = MonteCarloAmplifier::new(0.1).amplify(&alg, 3);
        let with = MonteCarloAmplifier::new(0.1)
            .with_diameter(100)
            .amplify(&alg, 3);
        // Same seeds => same iteration structure; rounds scale by
        // (10+100)/10.
        assert!(with.quantum_rounds > without.quantum_rounds * 5);
    }

    #[test]
    fn round_bound_formula() {
        let amp = MonteCarloAmplifier::new(0.25); // ⌈log₂ 4⌉ = 2 reps
        let bound = amp.round_bound(1.0 / 100.0, 7, 3);
        assert!((bound - 2.0 * 10.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_master_seed() {
        let alg = fake_alg(64, 2);
        let amp = MonteCarloAmplifier::new(0.1);
        let a = amp.amplify(&alg, 42);
        let b = amp.amplify(&alg, 42);
        assert_eq!(a, b);
    }
}
