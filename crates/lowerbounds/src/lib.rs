//! Set-Disjointness lower-bound reductions for cycle detection in
//! CONGEST (paper §3.3).
//!
//! The paper's quantum lower bounds (`Ω̃(n^{1/4})` for `C_{2k}`,
//! `Ω̃(√n)` for `C_{2k+1}`) follow the classical recipe of Drucker et
//! al. [15] and Korhonen–Rybicki [30]: build a *gadget graph* from a
//! two-party Set-Disjointness instance `(x, y)` such that the graph
//! contains the target cycle **iff** `x` and `y` intersect; then any
//! `T`-round CONGEST algorithm yields a two-party protocol exchanging
//! `O(T · cut · log n)` (qu)bits, which the communication lower bound of
//! Braverman et al. [4] (`Ω(r + N/r)` qubits for `r`-round protocols)
//! turns into a round lower bound.
//!
//! This crate provides:
//!
//! * [`disjointness`] — instances of the two-party problem;
//! * [`gadgets`] — the three gadget families (C4 from a polarity graph
//!   with `N = Θ(n^{3/2})`; `C_{2k}`, `k ≥ 3`, with `N = Θ(n)` and cut
//!   `Θ(√n)`; `C_{2k+1}` with `N = Θ(n²)` and cut `Θ(n)`), each with the
//!   iff-property enforced by exhaustive and randomized tests;
//! * [`reduction`] — running detectors on gadget graphs with a
//!   [`congest_sim::CutMeter`] to measure the communication the
//!   simulation actually pushes across the Alice/Bob cut;
//! * [`theory`] — the implied lower-bound formulas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjointness;
pub mod gadgets;
pub mod reduction;
pub mod theory;
