//! Running detectors on gadget graphs and metering the cut.
//!
//! The reduction argument: a `T(n)`-round CONGEST algorithm on the gadget
//! graph can be simulated by Alice and Bob exchanging only what crosses
//! the cut — `O(T · cut · log n)` bits. Solving Set-Disjointness needs
//! `Ω(N)` bits classically (`Ω(r + N/r)` qubits over `r` rounds,
//! Braverman et al. [4]), so `T = Ω(N / (cut · log n))` classically and
//! `T = Ω(√(N / (cut · log n)))` quantumly. This module measures the
//! left-hand side empirically.

use congest_graph::CycleWitness;
use congest_sim::{derive_seed, Executor};
use even_cycle::{random_coloring, CycleDetector, Params};

use crate::gadgets::BuiltGadget;

/// The measured communication of one detector execution on a gadget.
#[derive(Debug, Clone)]
pub struct ReductionMeasurement {
    /// Whether the detector rejected (found the target cycle).
    pub rejected: bool,
    /// The witness, when found.
    pub witness: Option<CycleWitness>,
    /// CONGEST rounds spent.
    pub rounds: u64,
    /// Words that crossed the Alice/Bob cut.
    pub cut_words: u64,
    /// `⌈log₂ n⌉`, the bits-per-word conversion.
    pub bits_per_word: u32,
    /// The gadget's cut size.
    pub cut_size: usize,
}

impl ReductionMeasurement {
    /// Total bits across the cut.
    pub fn cut_bits(&self) -> u64 {
        self.cut_words * u64::from(self.bits_per_word)
    }

    /// The two-party protocol cost bound `T · cut · log n` this execution
    /// certifies — the quantity the lower bound compares to `N`.
    pub fn protocol_bound(&self) -> u64 {
        self.rounds * self.cut_size as u64 * u64::from(self.bits_per_word)
    }
}

/// Runs Algorithm 1 (with the given parameters) on a built gadget with a
/// cut meter installed and reports the measured communication.
///
/// Algorithm 1 is run one coloring iteration at a time so the cut meter
/// captures exactly the rounds executed (the driver's own orchestration
/// is free in the two-party simulation).
pub fn measure_even_detection(
    gadget: &BuiltGadget,
    params: &Params,
    iterations: usize,
    seed: u64,
) -> ReductionMeasurement {
    let g = &gadget.graph;
    let n = g.node_count();
    let k = params.k;
    let inst = params.instantiate(n);
    let bits_per_word = (n as f64).log2().ceil() as u32;

    // Set construction (as in CycleDetector, but the cut meter must see
    // the color-BFS traffic, so we run the calls directly).
    let detector = CycleDetector::new(params.clone());
    let (_, memberships) = detector.build_memberships(g, seed, &Default::default());
    let all_mask = vec![true; n];
    let not_s: Vec<bool> = memberships.s_mask.iter().map(|&b| !b).collect();

    let mut rounds = 0u64;
    let mut cut_words = 0u64;
    let mut rejected = false;
    let mut witness = None;

    'outer: for r in 0..iterations as u64 {
        let colors = random_coloring(n, 2 * k, derive_seed(seed, 0xC0 + r));
        let phases: [(&[bool], &[bool]); 3] = [
            (&memberships.u_mask, &memberships.u_mask),
            (&all_mask, &memberships.s_mask),
            (&not_s, &memberships.w_mask),
        ];
        for (idx, (h_mask, x_mask)) in phases.into_iter().enumerate() {
            let mut exec = Executor::new(g, derive_seed(seed, 0xF000 + r * 3 + idx as u64));
            exec.set_cut(gadget.cut_meter());
            let report = exec
                .run(
                    |v, _| {
                        even_cycle::color_bfs::ColorBfs::new(
                            k,
                            colors[v.index()],
                            h_mask[v.index()],
                            x_mask[v.index()],
                            true,
                            inst.tau,
                        )
                    },
                    (k + 3) as u64,
                )
                .expect("color-BFS cannot violate the model");
            rounds += report.rounds;
            cut_words += report.cut_words.unwrap_or(0);
            if let Some(&v) = report.rejecting_nodes.first() {
                rejected = true;
                let origin = exec.nodes()[v as usize]
                    .evidence()
                    .expect("rejecting node has evidence")
                    .origin;
                witness = even_cycle::extract_even_witness(
                    g,
                    h_mask,
                    &colors,
                    k,
                    congest_graph::NodeId::new(origin),
                    congest_graph::NodeId::new(v),
                );
                break 'outer;
            }
        }
    }

    ReductionMeasurement {
        rejected,
        witness,
        rounds,
        cut_words,
        bits_per_word,
        cut_size: gadget.cut_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjointness::Disjointness;
    use crate::gadgets::C4Gadget;

    #[test]
    fn cut_traffic_measured_and_bounded() {
        let gadget = C4Gadget::new(3);
        let (inst, _) = Disjointness::random_with_planted_intersection(gadget.universe(), 3);
        let built = gadget.build(&inst);
        let params = Params::practical(2).with_repetitions(64);
        let m = measure_even_detection(&built, &params, 64, 7);
        // Cut traffic obeys the information-theoretic shape:
        // words ≤ rounds · cut (each crossing edge carries ≤ 1 word per
        // round at bandwidth 1).
        assert!(m.cut_words <= m.rounds * m.cut_size as u64);
        assert!(m.cut_words > 0, "color-BFS must cross the matching");
        assert!(m.protocol_bound() > 0);
    }

    #[test]
    fn detection_on_intersecting_gadget() {
        let gadget = C4Gadget::new(3);
        let (inst, _) = Disjointness::random_with_planted_intersection(gadget.universe(), 5);
        let built = gadget.build(&inst);
        let params = Params::practical(2).with_repetitions(256);
        let mut any = false;
        for seed in 0..4 {
            let m = measure_even_detection(&built, &params, 256, seed);
            if m.rejected {
                assert!(m.witness.as_ref().unwrap().is_valid(&built.graph));
                any = true;
                break;
            }
        }
        assert!(any, "planted intersection never detected");
    }

    #[test]
    fn soundness_on_disjoint_gadget() {
        let gadget = C4Gadget::new(3);
        let inst = Disjointness::random_disjoint(gadget.universe(), 1);
        let built = gadget.build(&inst);
        let params = Params::practical(2).with_repetitions(32);
        let m = measure_even_detection(&built, &params, 32, 2);
        assert!(!m.rejected, "one-sided error violated on the gadget");
    }
}
