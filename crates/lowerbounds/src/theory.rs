//! Implied lower-bound formulas (§3.3).

/// The Braverman–Garg–Ko–Mao–Touchette [4] bounded-round quantum
/// communication lower bound for Set-Disjointness over `[N]`:
/// an `r`-round protocol needs `Ω(r + N/r)` qubits. Minimizing over `r`
/// gives `Ω(√N)` overall, but the round-by-round form is what the
/// CONGEST reduction needs.
pub fn quantum_disjointness_bound(universe: usize, rounds: u64) -> f64 {
    rounds as f64 + universe as f64 / rounds.max(1) as f64
}

/// The round lower bound implied for a quantum CONGEST algorithm by a
/// gadget with universe `N` and cut size `cut` on an `n`-vertex graph:
/// the protocol exchanges `T · cut · log n` qubits over `T` rounds, so
/// `T · cut · log n ≥ N / T`, i.e. `T ≥ √(N / (cut · log n))`.
pub fn implied_quantum_round_bound(universe: usize, cut: usize, n: usize) -> f64 {
    let log_n = (n as f64).log2().max(1.0);
    (universe as f64 / (cut as f64 * log_n)).sqrt()
}

/// The classical analogue (`Ω(N)` bits total):
/// `T ≥ N / (cut · log n)`.
pub fn implied_classical_round_bound(universe: usize, cut: usize, n: usize) -> f64 {
    let log_n = (n as f64).log2().max(1.0);
    universe as f64 / (cut as f64 * log_n)
}

/// The paper's `Ω̃(n^{1/4})` quantum bound for `C4` — obtained from the
/// C4 gadget with `N = Θ(n^{3/2})` and cut `Θ(n)`:
/// `√(n^{3/2} / (n log n)) = n^{1/4}/√log n`.
pub fn c4_quantum_lower_bound(n: usize) -> f64 {
    let nf = n as f64;
    (nf.powf(1.5) / (nf * nf.log2().max(1.0))).sqrt()
}

/// The paper's `Ω̃(n^{1/4})` quantum bound for `C_{2k}`, `k ≥ 3` — from
/// the `N = Θ(n)`, cut `Θ(√n)` gadget:
/// `√(n / (√n · log n)) = n^{1/4}/√log n`.
pub fn c2k_quantum_lower_bound(n: usize) -> f64 {
    let nf = n as f64;
    (nf / (nf.sqrt() * nf.log2().max(1.0))).sqrt()
}

/// The paper's `Ω̃(√n)` quantum bound for `C_{2k+1}`, `k ≥ 2` — from the
/// `N = Θ(n²)`, cut `Θ(n)` gadget:
/// `√(n² / (n · log n)) = √(n / log n)`.
pub fn odd_quantum_lower_bound(n: usize) -> f64 {
    let nf = n as f64;
    (nf * nf / (nf * nf.log2().max(1.0))).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjointness_bound_minimized_at_sqrt() {
        let n_u = 1 << 16;
        let at_sqrt = quantum_disjointness_bound(n_u, 256);
        for r in [16u64, 64, 1024, 4096] {
            assert!(quantum_disjointness_bound(n_u, r) >= at_sqrt);
        }
    }

    #[test]
    fn implied_bounds_consistent() {
        let n = 1 << 16;
        // C4: N = n^{3/2}, cut = n.
        let c4 = implied_quantum_round_bound((f64::powf(n as f64, 1.5)) as usize, n, n);
        assert!((c4 - c4_quantum_lower_bound(n)).abs() / c4 < 0.05);
        // C_{2k}: N = n, cut = √n.
        let c2k = implied_quantum_round_bound(n, (n as f64).sqrt() as usize, n);
        assert!((c2k - c2k_quantum_lower_bound(n)).abs() / c2k < 0.05);
    }

    #[test]
    fn lower_bounds_scale_correctly() {
        // n^{1/4} shape: 16x n → 2x bound (up to the log factor).
        let a = c4_quantum_lower_bound(1 << 16);
        let b = c4_quantum_lower_bound(1 << 20);
        let ratio = b / a;
        assert!(ratio > 1.7 && ratio < 2.1, "ratio {ratio}");
        // √n shape for odd cycles: 16x n → 4x.
        let a = odd_quantum_lower_bound(1 << 16);
        let b = odd_quantum_lower_bound(1 << 20);
        let ratio = b / a;
        assert!(ratio > 3.4 && ratio < 4.2, "ratio {ratio}");
    }

    #[test]
    fn quantum_weaker_than_classical_requirement() {
        // The quantum implied bound is the square root of the classical
        // one (same gadget).
        let (n_u, cut, n) = (1 << 20, 1 << 10, 1 << 20);
        let q = implied_quantum_round_bound(n_u, cut, n);
        let c = implied_classical_round_bound(n_u, cut, n);
        assert!((q * q - c).abs() / c < 1e-9);
    }

    #[test]
    fn upper_meets_lower_for_c4() {
        // Theorem 2: the Õ(n^{1/4}) quantum C4 algorithm is optimal.
        let n = 1 << 20;
        let upper = even_cycle::theory::Table1Row::ThisPaperQuantum.rounds(n, 2);
        let lower = c4_quantum_lower_bound(n);
        // Same polynomial: ratio is polylog only.
        let ratio = upper / lower;
        assert!(ratio > 1.0 && ratio < 30.0, "ratio {ratio}");
    }
}
