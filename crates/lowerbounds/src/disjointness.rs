//! Two-party Set-Disjointness instances.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A Set-Disjointness instance over the universe `[N]`: Alice holds `x`,
/// Bob holds `y`, and they must decide whether some element lies in both
/// sets.
///
/// ```
/// use congest_lowerbounds::disjointness::Disjointness;
/// let d = Disjointness::from_sets(8, &[1, 3], &[0, 3, 7]);
/// assert!(d.intersects());
/// assert_eq!(d.intersection(), vec![3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disjointness {
    x: Vec<bool>,
    y: Vec<bool>,
}

impl Disjointness {
    /// Creates an instance from membership masks.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different lengths.
    pub fn new(x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), y.len(), "universe size mismatch");
        Disjointness { x, y }
    }

    /// Creates an instance from element lists.
    ///
    /// # Panics
    ///
    /// Panics if an element is `≥ n`.
    pub fn from_sets(n: usize, xs: &[usize], ys: &[usize]) -> Self {
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        for &e in xs {
            assert!(e < n, "element out of universe");
            x[e] = true;
        }
        for &e in ys {
            assert!(e < n, "element out of universe");
            y[e] = true;
        }
        Disjointness { x, y }
    }

    /// A random instance where each element joins each set independently
    /// with probability `p`.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = (0..n).map(|_| rng.gen_bool(p)).collect();
        let y = (0..n).map(|_| rng.gen_bool(p)).collect();
        Disjointness { x, y }
    }

    /// A random *disjoint* instance: each element goes to Alice, Bob, or
    /// neither — never both.
    pub fn random_disjoint(n: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        for e in 0..n {
            match rng.gen_range(0..3) {
                0 => x[e] = true,
                1 => y[e] = true,
                _ => {}
            }
        }
        Disjointness { x, y }
    }

    /// A random instance guaranteed to intersect in exactly one planted
    /// element (the hard distribution of the lower bound).
    pub fn random_with_planted_intersection(n: usize, seed: u64) -> (Self, usize) {
        let mut d = Self::random_disjoint(n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37);
        let e = rng.gen_range(0..n);
        d.x[e] = true;
        d.y[e] = true;
        // Remove any other accidental intersection (random_disjoint has
        // none, so e is unique by construction).
        (d, e)
    }

    /// Universe size `N`.
    pub fn universe(&self) -> usize {
        self.x.len()
    }

    /// Alice's membership mask.
    pub fn x(&self) -> &[bool] {
        &self.x
    }

    /// Bob's membership mask.
    pub fn y(&self) -> &[bool] {
        &self.y
    }

    /// Whether the sets intersect.
    pub fn intersects(&self) -> bool {
        self.x.iter().zip(&self.y).any(|(&a, &b)| a && b)
    }

    /// All common elements.
    pub fn intersection(&self) -> Vec<usize> {
        (0..self.universe())
            .filter(|&e| self.x[e] && self.y[e])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let d = Disjointness::from_sets(6, &[0, 2], &[1, 3]);
        assert!(!d.intersects());
        assert!(d.intersection().is_empty());
        assert_eq!(d.universe(), 6);
        let d = Disjointness::from_sets(6, &[0, 2], &[2]);
        assert!(d.intersects());
        assert_eq!(d.intersection(), vec![2]);
    }

    #[test]
    fn random_disjoint_never_intersects() {
        for seed in 0..20 {
            assert!(!Disjointness::random_disjoint(64, seed).intersects());
        }
    }

    #[test]
    fn planted_intersection_exact() {
        for seed in 0..20 {
            let (d, e) = Disjointness::random_with_planted_intersection(64, seed);
            assert_eq!(d.intersection(), vec![e]);
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(
            Disjointness::random(32, 0.3, 5),
            Disjointness::random(32, 0.3, 5)
        );
    }

    #[test]
    #[should_panic(expected = "universe size mismatch")]
    fn mismatched_masks_panic() {
        Disjointness::new(vec![true], vec![true, false]);
    }
}
