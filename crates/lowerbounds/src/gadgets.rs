//! The three gadget families of the §3.3 reductions.
//!
//! Each gadget maps a Set-Disjointness instance `(x, y)` over a universe
//! of size `N` to a graph split between Alice and Bob by a small cut,
//! such that the graph contains the target cycle **iff** `x ∩ y ≠ ∅`.
//! The constructions are re-derivations in the spirit of [15] and [30]
//! (whose figures the paper does not reproduce); what the experiments
//! rely on — universe scaling, cut scaling, and the iff-property — is
//! stated in each builder's docs and enforced by tests (exhaustively for
//! small universes).

use congest_graph::{Graph, GraphBuilder, NodeId};

use crate::disjointness::Disjointness;

/// A gadget graph with its Alice/Bob split.
#[derive(Debug, Clone)]
pub struct BuiltGadget {
    /// The composed network.
    pub graph: Graph,
    /// `side[v] = false` for Alice's vertices, `true` for Bob's.
    pub side: Vec<bool>,
    /// The number of edges crossing the cut.
    pub cut_size: usize,
    /// The cycle length whose presence encodes intersection.
    pub target_cycle: usize,
}

impl BuiltGadget {
    /// Installs a [`congest_sim::CutMeter`] for this gadget's cut.
    pub fn cut_meter(&self) -> congest_sim::CutMeter {
        congest_sim::CutMeter::new(&self.graph, self.side.clone())
    }
}

/// The C4 gadget (Drucker et al. [15] style): the universe is the edge
/// set of a **C4-free** base graph (the polarity graph `ER_q`,
/// `N = Θ(n^{3/2})` edges on `Θ(n)` vertices); Alice keeps base edge
/// `e_i` iff `x_i = 1`, Bob keeps `e_i` iff `y_i = 1`, and a perfect
/// matching joins the two copies.
///
/// A C4 exists iff some base edge survives on both sides: the only
/// 4-cycles not internal to a (C4-free) side are
/// `u_A — v_A — v_B — u_B — u_A`, which need edge `{u, v}` in both
/// copies.
#[derive(Debug, Clone)]
pub struct C4Gadget {
    base: Graph,
    base_edges: Vec<(NodeId, NodeId)>,
}

impl C4Gadget {
    /// Builds the gadget family over the polarity graph `ER_q` (`q`
    /// prime).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not prime.
    pub fn new(q: u64) -> Self {
        let base = congest_graph::generators::polarity_graph(q);
        let base_edges = base.edge_vec();
        C4Gadget { base, base_edges }
    }

    /// The universe size `N` (number of base edges), `Θ(n^{3/2})`.
    pub fn universe(&self) -> usize {
        self.base_edges.len()
    }

    /// Number of vertices of the composed gadget (`2·|V(ER_q)|`).
    pub fn node_count(&self) -> usize {
        2 * self.base.node_count()
    }

    /// Composes the gadget for a disjointness instance.
    ///
    /// # Panics
    ///
    /// Panics if the instance universe differs from
    /// [`C4Gadget::universe`].
    pub fn build(&self, instance: &Disjointness) -> BuiltGadget {
        assert_eq!(
            instance.universe(),
            self.universe(),
            "universe size mismatch"
        );
        let nb = self.base.node_count() as u32;
        let mut b = GraphBuilder::new(2 * nb as usize);
        for (i, &(u, v)) in self.base_edges.iter().enumerate() {
            if instance.x()[i] {
                b.add_edge(u, v);
            }
            if instance.y()[i] {
                b.add_edge(NodeId::new(u.raw() + nb), NodeId::new(v.raw() + nb));
            }
        }
        // Perfect matching between the copies.
        for v in 0..nb {
            b.add_edge(NodeId::new(v), NodeId::new(v + nb));
        }
        let graph = b.build();
        let side: Vec<bool> = (0..2 * nb).map(|v| v >= nb).collect();
        BuiltGadget {
            graph,
            side,
            cut_size: nb as usize,
            target_cycle: 4,
        }
    }
}

/// The `C_{2k}` gadget (`k ≥ 3`, Korhonen–Rybicki [30] style):
/// `N = s²` elements, cut `2s = Θ(√N)`.
///
/// Alice has row vertices `α_1..α_s` and column vertices `β_1..β_s`
/// (Bob: primed copies), with matchings `α_i — α'_i`, `β_j — β'_j`.
/// Element `(i, j)` present on Alice's side contributes a fresh path of
/// length `k-1` from `α_i` to `β_j`; likewise for Bob. A `2k`-cycle
/// exists iff some `(i, j)` is present on *both* sides:
/// `α_i →^{k-1} β_j — β'_j →^{k-1} α'_i — α_i` has length `2k`, while
/// every other cycle type is forced longer (side-internal cycles have
/// length `≥ 4(k-1) > 2k` for `k ≥ 3`; cycles crossing four or more
/// matchings are longer still; two same-type matchings give even-length
/// side portions summing `> 2k`).
#[derive(Debug, Clone)]
pub struct EvenCycleGadget {
    k: usize,
    s: usize,
}

impl EvenCycleGadget {
    /// Creates the family with side parameter `s` (universe `N = s²`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (use [`C4Gadget`] for `k = 2`) or `s == 0`.
    pub fn new(k: usize, s: usize) -> Self {
        assert!(k >= 3, "use C4Gadget for k = 2");
        assert!(s > 0, "side parameter must be positive");
        EvenCycleGadget { k, s }
    }

    /// The universe size `N = s²`.
    pub fn universe(&self) -> usize {
        self.s * self.s
    }

    /// The target cycle length `2k`.
    pub fn target_cycle(&self) -> usize {
        2 * self.k
    }

    /// Composes the gadget. Vertex layout: Alice terminals
    /// (`α` then `β`), Bob terminals, then per-element path internals.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn build(&self, instance: &Disjointness) -> BuiltGadget {
        assert_eq!(
            instance.universe(),
            self.universe(),
            "universe size mismatch"
        );
        let s = self.s as u32;
        let k = self.k;
        // 0..s: α; s..2s: β; 2s..3s: α'; 3s..4s: β'.
        let mut b = GraphBuilder::new(4 * s as usize);
        let alpha = |i: u32| NodeId::new(i);
        let beta = |j: u32| NodeId::new(s + j);
        let alpha_p = |i: u32| NodeId::new(2 * s + i);
        let beta_p = |j: u32| NodeId::new(3 * s + j);
        for i in 0..s {
            b.add_edge(alpha(i), alpha_p(i));
            b.add_edge(beta(i), beta_p(i));
        }
        let mut alice_internals: Vec<NodeId> = Vec::new();
        let mut bob_internals: Vec<NodeId> = Vec::new();
        for e in 0..instance.universe() {
            let i = (e / self.s) as u32;
            let j = (e % self.s) as u32;
            if instance.x()[e] {
                alice_internals.extend(b.add_path(alpha(i), beta(j), k - 1));
            }
            if instance.y()[e] {
                bob_internals.extend(b.add_path(alpha_p(i), beta_p(j), k - 1));
            }
        }
        let graph = b.build();
        let mut side = vec![false; graph.node_count()];
        for v in 2 * s..4 * s {
            side[v as usize] = true;
        }
        for v in bob_internals {
            side[v.index()] = true;
        }
        BuiltGadget {
            graph,
            side,
            cut_size: 2 * s as usize,
            target_cycle: 2 * k,
        }
    }
}

/// The `C_{2k+1}` gadget (`k ≥ 2`, Drucker et al. [15] style):
/// `N = t²` elements, cut `Θ(t)`, vertices `Θ(t·k)` — so `N = Θ(n²)`
/// for constant `k`.
///
/// Alice has `P = p_1..p_t` and `Q = q_1..q_t` (Bob: primed copies);
/// *fixed* paths `p_i →^{k} p'_i` and `q_j →^{k-1} q'_j` join the
/// copies. Element `(i, j)`: Alice edge `{p_i, q_j}` iff `x`, Bob edge
/// `{p'_i, q'_j}` iff `y`. A `(2k+1)`-cycle exists iff some element is
/// on both sides: `p_i — q_j →^{k-1} q'_j — p'_i →^{k} p_i` has length
/// `1 + (k-1) + 1 + k = 2k+1`. Both sides are bipartite (no odd cycles
/// inside); an odd cycle must use one `p`-path and one `q`-path
/// (same-type pairs give even length, four or more crossings exceed
/// `2k+1`), and then its side portions have odd lengths summing to 2 —
/// i.e., single edges encoding the same element.
#[derive(Debug, Clone)]
pub struct OddCycleGadget {
    k: usize,
    t: usize,
}

impl OddCycleGadget {
    /// Creates the family with side parameter `t` (universe `N = t²`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `t == 0`.
    pub fn new(k: usize, t: usize) -> Self {
        assert!(k >= 2, "the paper's odd lower bound targets k ≥ 2");
        assert!(t > 0, "side parameter must be positive");
        OddCycleGadget { k, t }
    }

    /// The universe size `N = t²`.
    pub fn universe(&self) -> usize {
        self.t * self.t
    }

    /// The target cycle length `2k + 1`.
    pub fn target_cycle(&self) -> usize {
        2 * self.k + 1
    }

    /// Composes the gadget.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn build(&self, instance: &Disjointness) -> BuiltGadget {
        assert_eq!(
            instance.universe(),
            self.universe(),
            "universe size mismatch"
        );
        let t = self.t as u32;
        let k = self.k;
        // 0..t: P; t..2t: Q; 2t..3t: P'; 3t..4t: Q'.
        let mut b = GraphBuilder::new(4 * t as usize);
        let p = |i: u32| NodeId::new(i);
        let q = |j: u32| NodeId::new(t + j);
        let p_p = |i: u32| NodeId::new(2 * t + i);
        let q_p = |j: u32| NodeId::new(3 * t + j);
        // Fixed matching paths: p-paths of length k, q-paths of length
        // k-1 (total 2k-1 with the two element edges: 2k+1).
        let mut path_internals: Vec<(Vec<NodeId>, bool)> = Vec::new();
        for i in 0..t {
            let internals = b.add_path(p(i), p_p(i), k);
            path_internals.push((internals, false)); // p-path
        }
        for j in 0..t {
            let internals = b.add_path(q(j), q_p(j), k - 1);
            path_internals.push((internals, true)); // q-path
        }
        for e in 0..instance.universe() {
            let i = (e / self.t) as u32;
            let j = (e % self.t) as u32;
            if instance.x()[e] {
                b.add_edge(p(i), q(j));
            }
            if instance.y()[e] {
                b.add_edge(p_p(i), q_p(j));
            }
        }
        let graph = b.build();
        // Cut: assign the first half of each matching path to Alice.
        let mut side = vec![false; graph.node_count()];
        for v in 2 * t..4 * t {
            side[v as usize] = true;
        }
        for (internals, _) in &path_internals {
            // Internals run Alice-end → Bob-end; give the second half to
            // Bob, so each matching path crosses the cut exactly once.
            // (For k = 2 the q-paths are single edges with no internals
            // and the edge itself crosses.)
            let half = internals.len() / 2;
            for (idx, &v) in internals.iter().enumerate() {
                side[v.index()] = idx >= half;
            }
        }
        let cut_edges = graph
            .edges()
            .filter(|&(u, v)| side[u.index()] != side[v.index()])
            .count();
        debug_assert_eq!(cut_edges, 2 * t as usize, "one crossing per matching path");
        BuiltGadget {
            graph,
            side,
            cut_size: cut_edges,
            target_cycle: 2 * k + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::analysis;

    /// Exhaustive iff-property check over all (x, y) pairs for a tiny
    /// universe.
    fn check_iff_exhaustive<F: Fn(&Disjointness) -> BuiltGadget>(
        universe: usize,
        build: F,
        target: usize,
    ) {
        assert!(universe <= 4, "exhaustive check needs a tiny universe");
        for xm in 0u32..(1 << universe) {
            for ym in 0u32..(1 << universe) {
                let x: Vec<bool> = (0..universe).map(|e| xm >> e & 1 == 1).collect();
                let y: Vec<bool> = (0..universe).map(|e| ym >> e & 1 == 1).collect();
                let inst = Disjointness::new(x, y);
                let built = build(&inst);
                let has = analysis::has_cycle_exact(&built.graph, target, Some(50_000_000));
                assert_eq!(
                    has,
                    inst.intersects(),
                    "iff violated at x={xm:b}, y={ym:b}, target C{target}"
                );
            }
        }
    }

    #[test]
    fn c4_gadget_iff_random() {
        let gadget = C4Gadget::new(3); // 13 vertices, N = base edges
        let n_u = gadget.universe();
        for seed in 0..10 {
            let inst = Disjointness::random(n_u, 0.3, seed);
            let built = gadget.build(&inst);
            assert_eq!(
                analysis::has_cycle_exact(&built.graph, 4, None),
                inst.intersects(),
                "seed {seed}"
            );
        }
        for seed in 0..10 {
            let inst = Disjointness::random_disjoint(n_u, seed);
            let built = gadget.build(&inst);
            assert!(!analysis::has_cycle_exact(&built.graph, 4, None));
        }
    }

    #[test]
    fn c4_gadget_universe_scaling() {
        // N = Θ(n^{3/2}): doubling q roughly 2^{3/2}-uples N relative to
        // vertices.
        let small = C4Gadget::new(5);
        let large = C4Gadget::new(11);
        let density = |g: &C4Gadget| g.universe() as f64 / (g.node_count() as f64).powf(1.5);
        let r = density(&large) / density(&small);
        assert!(r > 0.5 && r < 2.0, "density ratio {r} not Θ(1)");
    }

    #[test]
    fn even_gadget_iff_exhaustive_tiny() {
        let gadget = EvenCycleGadget::new(3, 2);
        check_iff_exhaustive(4, |inst| gadget.build(inst), 6);
    }

    #[test]
    fn even_gadget_iff_random() {
        for k in [3usize, 4] {
            let gadget = EvenCycleGadget::new(k, 3);
            for seed in 0..8 {
                let inst = Disjointness::random(9, 0.3, seed);
                let built = gadget.build(&inst);
                assert_eq!(
                    analysis::has_cycle_exact(&built.graph, 2 * k, None),
                    inst.intersects(),
                    "k={k}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn even_gadget_cut_is_2s() {
        let gadget = EvenCycleGadget::new(3, 4);
        let inst = Disjointness::random(16, 0.5, 1);
        let built = gadget.build(&inst);
        assert_eq!(built.cut_size, 8);
        let crossing = built
            .graph
            .edges()
            .filter(|&(u, v)| built.side[u.index()] != built.side[v.index()])
            .count();
        assert_eq!(crossing, 8);
    }

    #[test]
    fn odd_gadget_iff_exhaustive_tiny() {
        let gadget = OddCycleGadget::new(2, 2);
        check_iff_exhaustive(4, |inst| gadget.build(inst), 5);
    }

    #[test]
    fn odd_gadget_iff_random() {
        for k in [2usize, 3] {
            let gadget = OddCycleGadget::new(k, 3);
            for seed in 0..8 {
                let inst = Disjointness::random(9, 0.3, seed);
                let built = gadget.build(&inst);
                assert_eq!(
                    analysis::has_cycle_exact(&built.graph, 2 * k + 1, None),
                    inst.intersects(),
                    "k={k}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn odd_gadget_no_shorter_odd_cycles() {
        // Even with intersection, nothing odd shorter than 2k+1 appears.
        let gadget = OddCycleGadget::new(3, 3);
        let (inst, _) = Disjointness::random_with_planted_intersection(9, 4);
        let built = gadget.build(&inst);
        assert!(analysis::has_cycle_exact(&built.graph, 7, None));
        assert!(!analysis::has_cycle_exact(&built.graph, 5, None));
        assert!(!analysis::has_cycle_exact(&built.graph, 3, None));
    }

    #[test]
    fn gadget_cut_meter_integrates() {
        let gadget = EvenCycleGadget::new(3, 2);
        let inst = Disjointness::random(4, 0.5, 2);
        let built = gadget.build(&inst);
        let meter = built.cut_meter();
        assert_eq!(meter.cut_size(), built.cut_size);
    }
}
