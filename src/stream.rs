//! Streaming scenarios: replay an [`UpdateSchedule`] and ask detectors
//! for a verdict at every checkpoint.
//!
//! A [`StreamScenario`] is the dynamic-graph sibling of
//! [`Scenario`](crate::scenario::Scenario): where a static scenario
//! sweeps `sizes × seeds × detectors`, a stream sweeps `checkpoints ×
//! seeds × detectors` over the snapshots of a seeded edge-update
//! replay. Execution is delegated to the engine
//! ([`Engine::run_stream`](crate::engine::Engine::run_stream)): every
//! checkpoint verdict is a content-addressed work unit keyed by
//! `(schedule fingerprint, checkpoint index, n, seed, detector,
//! budget)`, so re-running an unchanged stream resolves every unit from
//! the result store with **zero** detector invocations, and editing any
//! schedule parameter moves every affected key.
//!
//! ```
//! use even_cycle_congest::stream::StreamScenario;
//! use even_cycle_congest::cycle::{CycleDetector, Params};
//! use congest_graph::UpdateSchedule;
//!
//! let schedule = UpdateSchedule::parse("planted:4@rate=6,mix=0.7,checkpoints=2").unwrap();
//! let scenario = StreamScenario::new("stream smoke", schedule).n(32).seeds(0..2);
//! let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
//! let outcome = scenario.run(&[&det]);
//! assert_eq!(outcome.report.rows.len(), 1);
//! assert_eq!(outcome.report.rows[0].cells.len(), 2);
//! ```

use std::path::PathBuf;

use congest_graph::UpdateSchedule;
use even_cycle::{Budget, Descriptor, Detector};

use crate::engine::store::{json_escape, json_f64};
use crate::engine::{Engine, Schedule, StreamOutcome};
use crate::scenario::{IntoSeeds, Metric};

/// A declarative streaming measurement: update schedule × instance size
/// × seeds × budget × metric, plus the execution knobs (worker count,
/// result store, engine schedule) the engine honors.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    pub(crate) name: String,
    pub(crate) updates: UpdateSchedule,
    pub(crate) n: usize,
    pub(crate) seeds: Vec<u64>,
    pub(crate) budget: Budget,
    pub(crate) metric: Metric,
    pub(crate) workers: Option<usize>,
    pub(crate) store: Option<PathBuf>,
    pub(crate) schedule: Option<Schedule>,
}

impl StreamScenario {
    /// Creates a streaming scenario with defaults: `n = 64`, seeds
    /// `0..3`, classical budget, [`Metric::Rounds`].
    pub fn new(name: impl Into<String>, updates: UpdateSchedule) -> Self {
        StreamScenario {
            name: name.into(),
            updates,
            n: 64,
            seeds: (0..3).collect(),
            budget: Budget::classical(),
            metric: Metric::Rounds,
            workers: None,
            store: None,
            schedule: None,
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The replayed update schedule.
    pub fn updates(&self) -> &UpdateSchedule {
        &self.updates
    }

    /// The requested instance size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The configured seed sweep.
    pub fn seeds_configured(&self) -> &[u64] {
        &self.seeds
    }

    /// Sets the requested instance size of the base graph.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the seed sweep; per-checkpoint values average over it.
    pub fn seeds(mut self, seeds: impl IntoSeeds) -> Self {
        let seeds = seeds.into_seeds();
        assert!(!seeds.is_empty(), "need at least one seed");
        self.seeds = seeds;
        self
    }

    /// Sets the resource budget every checkpoint verdict runs under.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the extracted metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the worker-thread count (default: `EVEN_CYCLE_WORKERS`,
    /// else 1). Any worker count produces byte-identical reports.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Persists every checkpoint unit to the content-addressed result
    /// store under `dir` and resumes from it: an unchanged stream
    /// replays entirely, an extended one (more seeds, more detectors)
    /// executes only the new cells.
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// Sets the engine scheduling policy (dispatch order and optional
    /// wall-clock cap — see [`Schedule`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Replays the stream and runs every detector at every checkpoint
    /// on the experiment engine (honoring the scenario's worker, store,
    /// and schedule knobs).
    pub fn run(&self, detectors: &[&dyn Detector]) -> StreamOutcome {
        let mut engine = Engine::from_env();
        if let Some(w) = self.workers {
            engine = engine.with_workers(w);
        }
        if let Some(dir) = &self.store {
            engine = engine.with_store(dir.clone());
        }
        if let Some(schedule) = self.schedule {
            engine = engine.with_schedule(schedule);
        }
        engine.run_stream(self, detectors)
    }

    /// Runs every entry of a registry through the stream.
    pub fn run_registry(&self, registry: &crate::registry::DetectorRegistry) -> StreamOutcome {
        let dets: Vec<&dyn Detector> = registry.iter().map(|e| e.detector.as_ref()).collect();
        self.run(&dets)
    }
}

/// One detector's verdict statistics at one checkpoint, averaged over
/// the seed sweep.
#[derive(Debug, Clone)]
pub struct CheckpointCell {
    /// 0-based checkpoint index.
    pub checkpoint: usize,
    /// Updates applied to the base graph when this checkpoint fired.
    pub updates_applied: usize,
    /// Mean metric value over the seeds that completed OK (NaN when
    /// none did).
    pub mean: f64,
    /// Seeds that completed OK at this checkpoint.
    pub ok: u64,
    /// Rejections (cycle found) at this checkpoint across seeds.
    pub rejections: u64,
}

/// One detector's measured series across the stream's checkpoints.
#[derive(Debug, Clone)]
pub struct StreamRow {
    /// The registry-style identifier.
    pub id: String,
    /// The algorithm's metadata.
    pub descriptor: Descriptor,
    /// One cell per checkpoint, in stream order.
    pub cells: Vec<CheckpointCell>,
    /// Rejecting runs across the whole stream.
    pub rejections: u64,
    /// Runs that returned a simulator error (excluded from means).
    pub errors: u64,
    /// Runs aborted by a [`Budget`] cap (excluded from means).
    pub budget_exceeded: u64,
    /// Units never dispatched because the engine schedule's wall-clock
    /// cap elapsed first (resumable from the result store).
    pub skipped: u64,
}

/// The aggregated result of one stream run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Scenario name.
    pub scenario: String,
    /// The schedule's canonical label.
    pub schedule: String,
    /// The metric measured.
    pub metric: Metric,
    /// The bandwidth the budget charged.
    pub bandwidth: u64,
    /// Requested base-instance size.
    pub n: usize,
    /// Seeds averaged per checkpoint.
    pub runs_per_checkpoint: usize,
    /// One row per detector.
    pub rows: Vec<StreamRow>,
}

impl StreamReport {
    /// Total units skipped across all rows by the engine schedule's
    /// wall-clock cap (0 for an uncapped or finished stream).
    pub fn skipped_units(&self) -> u64 {
        self.rows.iter().map(|r| r.skipped).sum()
    }

    /// Renders an aligned text block: one line per detector, then the
    /// per-checkpoint means.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== stream: {} — {} of {} at n = {} (B = {}, {} seeds/checkpoint) ==\n",
            self.scenario,
            self.metric.label(),
            self.schedule,
            self.n,
            self.bandwidth,
            self.runs_per_checkpoint,
        );
        for row in &self.rows {
            let capped = if row.budget_exceeded > 0 {
                format!("  capped {}", row.budget_exceeded)
            } else {
                String::new()
            };
            let skipped = if row.skipped > 0 {
                format!("  skipped {}", row.skipped)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:<44} rejections {}  errors {}{}{}\n",
                row.id, row.rejections, row.errors, capped, skipped
            ));
            for cell in &row.cells {
                out.push_str(&format!(
                    "    checkpoint {:>3} (after {:>5} updates)  ->  {:>14.1}  (rejects {}/{})\n",
                    cell.checkpoint, cell.updates_applied, cell.mean, cell.rejections, cell.ok
                ));
            }
        }
        out
    }

    /// Serializes the whole report as one JSON object (single line —
    /// suitable for JSONL streams). Non-finite means serialize as
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"scenario\":\"{}\",\"schedule\":\"{}\",\"metric\":\"{}\",\"bandwidth\":{},\"n\":{},\"runs_per_checkpoint\":{},\"rows\":[",
            json_escape(&self.scenario),
            json_escape(&self.schedule),
            json_escape(self.metric.label()),
            self.bandwidth,
            self.n,
            self.runs_per_checkpoint,
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"rejections\":{},\"errors\":{},\"budget_exceeded\":{},\"skipped\":{},\"checkpoints\":[",
                json_escape(&row.id),
                row.rejections,
                row.errors,
                row.budget_exceeded,
                row.skipped,
            ));
            for (j, cell) in row.cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"checkpoint\":{},\"updates\":{},\"mean\":{},\"ok\":{},\"rejections\":{}}}",
                    cell.checkpoint,
                    cell.updates_applied,
                    json_f64(cell.mean),
                    cell.ok,
                    cell.rejections,
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Appends the report as one JSONL line to `path`, creating the
    /// file (and its parent directory) when missing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use even_cycle::{CycleDetector, Params};

    fn schedule() -> UpdateSchedule {
        UpdateSchedule::parse("planted:4@rate=5,mix=0.7,checkpoints=3").unwrap()
    }

    #[test]
    fn stream_runs_and_reports_every_checkpoint() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let outcome = StreamScenario::new("smoke", schedule())
            .n(32)
            .seeds(0..2)
            .run(&[&det]);
        assert_eq!(outcome.total_units, 3 * 2);
        assert_eq!(outcome.executed_units, 6, "no store: everything executes");
        let report = &outcome.report;
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.cells.len(), 3);
        for (i, cell) in row.cells.iter().enumerate() {
            assert_eq!(cell.checkpoint, i);
            assert_eq!(cell.updates_applied, (i + 1) * 5);
            assert_eq!(cell.ok, 2);
        }
        assert!(report.render().contains("checkpoint"));
    }

    #[test]
    fn stream_reports_are_worker_count_invariant() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let base = StreamScenario::new("workers", schedule()).n(32).seeds(0..2);
        let seq = base.clone().workers(1).run(&[&det]);
        let par = base.workers(4).run(&[&det]);
        assert_eq!(seq.report.to_json(), par.report.to_json());
    }

    #[test]
    fn stream_json_is_one_line_and_carries_the_schedule() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let outcome = StreamScenario::new("json", schedule())
            .n(24)
            .seeds(0..1)
            .run(&[&det]);
        let json = outcome.report.to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"schedule\":\"planted:4@rate=5,mix=0.7,checkpoints=3\""));
        assert!(json.contains("\"checkpoints\":[{"));
    }
}
