//! Suite files: whole experiment campaigns as data.
//!
//! A suite file is line-oriented — one *stanza* per non-empty,
//! non-comment line, each a `;`-separated list of `key=value` fields
//! (hand-rolled parsing; the workspace has no serde):
//!
//! ```text
//! # every family at smoke sizes (comments start with '#')
//! family=planted:4; sizes=24,32; seeds=0..2
//! family=ws:4:0.1; sizes=24,32; seeds=0,7,42; metric=congestion
//! family=funnel:4:2; detectors=color-bfs,gather; k=2
//! ```
//!
//! Fields:
//!
//! * `family` (required) — one [`FamilySpec`] string, or several
//!   separated by commas (`family=er:3,ws:4:0.1,torus`); a multi-spec
//!   stanza expands to the full cross product, one stanza per family
//!   sharing the line's sizes, seeds, detectors, metric, and `k`. The
//!   one catalog parser, shared error message and all.
//! * `sizes` — comma-separated instance sizes (default: the run
//!   profile's grid).
//! * `seeds` — `A..B` or an explicit `s1,s2,...` list (default: the
//!   profile's sweep).
//! * `detectors` — `all` (default) or comma-separated registry-id
//!   fragments; each fragment selects every entry whose id contains
//!   it, and must match at least one.
//! * `metric` — a [`Metric`] spelling (default `rounds`).
//! * `k` — the registry family parameter for this stanza (default: the
//!   suite-wide `k`).
//! * `label` — the scenario's display name (default: the family
//!   label).
//!
//! [`Suite::prepare`] resolves stanzas against a [`RunProfile`] into
//! ready scenarios + detector selections; [`PreparedSuite::run`]
//! pushes the whole campaign through ONE engine — shared worker pool,
//! graph cache, result store, schedule, and thread budget (see
//! [`Engine::run_suite`]).

use std::path::Path;

use congest_graph::FamilySpec;
use even_cycle::{Backend, Detector};

use crate::engine::{Engine, RunProfile, SuiteOutcome};
use crate::registry::DetectorRegistry;
use crate::scenario::{GraphFamily, Metric, Scenario};

/// Which registry entries a stanza sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorSelect {
    /// Every entry of the stanza's registry.
    All,
    /// Entries whose id contains any of these fragments.
    Ids(Vec<String>),
}

/// One parsed suite stanza (one line of the file).
#[derive(Debug, Clone)]
pub struct SuiteStanza {
    /// Display name override.
    pub label: Option<String>,
    /// The graph family (typed, fingerprintable).
    pub family: FamilySpec,
    /// Instance sizes; `None` uses the profile default.
    pub sizes: Option<Vec<usize>>,
    /// Seed sweep; `None` uses the profile default.
    pub seeds: Option<Vec<u64>>,
    /// Registry selection.
    pub detectors: DetectorSelect,
    /// Extracted metric; `None` means [`Metric::Rounds`].
    pub metric: Option<Metric>,
    /// Registry family parameter; `None` uses the suite-wide default.
    pub k: Option<usize>,
}

/// A parsed suite file.
#[derive(Debug, Clone)]
pub struct Suite {
    /// The stanzas, in file order.
    pub stanzas: Vec<SuiteStanza>,
}

/// Parses a seed spec: `A..B` (half-open range) or a comma-separated
/// explicit list (`0,7,42`). Shared by suite files and `sweep
/// --seeds`.
///
/// # Errors
///
/// A message naming the offending spec; empty ranges and empty lists
/// are rejected.
pub fn parse_seed_spec(spec: &str) -> Result<Vec<u64>, String> {
    let spec = spec.trim();
    if let Some((a, b)) = spec.split_once("..") {
        let a: u64 = a
            .trim()
            .parse()
            .map_err(|_| format!("bad seed start {a:?} in {spec:?}"))?;
        let b: u64 = b
            .trim()
            .parse()
            .map_err(|_| format!("bad seed end {b:?} in {spec:?}"))?;
        if a >= b {
            return Err(format!("empty seed range {spec:?}"));
        }
        return Ok((a..b).collect());
    }
    let seeds: Result<Vec<u64>, String> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad seed {s:?} in {spec:?}"))
        })
        .collect();
    let seeds = seeds?;
    if seeds.is_empty() {
        return Err(format!("empty seed list {spec:?}"));
    }
    Ok(seeds)
}

/// Parses a comma-separated size list (`24,32,48`).
///
/// # Errors
///
/// A message naming the offending spec.
pub fn parse_size_spec(spec: &str) -> Result<Vec<usize>, String> {
    let sizes: Result<Vec<usize>, String> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad size {s:?} in {spec:?}"))
        })
        .collect();
    let sizes = sizes?;
    if sizes.is_empty() {
        return Err(format!("empty size list {spec:?}"));
    }
    Ok(sizes)
}

impl Suite {
    /// Parses suite text. Errors carry 1-based line numbers.
    ///
    /// # Errors
    ///
    /// The first malformed line's diagnosis.
    pub fn parse(text: &str) -> Result<Suite, String> {
        let mut stanzas = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let expanded =
                parse_stanza(line).map_err(|e| format!("suite line {}: {e}", lineno + 1))?;
            stanzas.extend(expanded);
        }
        if stanzas.is_empty() {
            return Err("suite file has no stanzas".to_string());
        }
        Ok(Suite { stanzas })
    }

    /// Reads and parses a suite file.
    ///
    /// # Errors
    ///
    /// I/O failures (with the path) and parse errors.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Suite, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read suite {}: {e}", path.display()))?;
        Suite::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Resolves the suite against a run profile: builds one registry
    /// per distinct `k`, applies profile defaults for missing grids,
    /// and resolves each stanza's detector selection. `backend`
    /// overrides every scenario's simulation backend (the `--backend`
    /// flag); `None` keeps the profile default.
    ///
    /// # Errors
    ///
    /// Unresolvable detector fragments (naming the stanza) and invalid
    /// `k` values.
    pub fn prepare(
        &self,
        profile: RunProfile,
        default_k: usize,
        backend: Option<Backend>,
    ) -> Result<PreparedSuite, String> {
        let mut registries: Vec<(usize, DetectorRegistry)> = Vec::new();
        let mut runs = Vec::with_capacity(self.stanzas.len());
        for (idx, stanza) in self.stanzas.iter().enumerate() {
            let k = stanza.k.unwrap_or(default_k);
            if k < 2 {
                return Err(format!("stanza {}: k must be at least 2, got {k}", idx + 1));
            }
            let ri = match registries.iter().position(|(rk, _)| *rk == k) {
                Some(ri) => ri,
                None => {
                    registries.push((k, profile.registry(k)));
                    registries.len() - 1
                }
            };
            let registry = &registries[ri].1;
            let entries = resolve_detectors(registry, &stanza.detectors)
                .map_err(|e| format!("stanza {} ({}): {e}", idx + 1, stanza.family))?;

            let family = GraphFamily::from(stanza.family.clone());
            let label = stanza
                .label
                .clone()
                .unwrap_or_else(|| family.name().to_string());
            let mut scenario = Scenario::new(label, family)
                .sizes(
                    &stanza
                        .sizes
                        .clone()
                        .unwrap_or_else(|| profile.default_sizes()),
                )
                .seeds(
                    stanza
                        .seeds
                        .clone()
                        .unwrap_or_else(|| profile.default_seeds().collect()),
                )
                .metric(stanza.metric.unwrap_or(Metric::Rounds))
                .budget(profile.budget());
            if let Some(b) = backend {
                scenario = scenario.backend(b);
            }
            runs.push(PreparedRun {
                scenario,
                registry: ri,
                entries,
            });
        }
        Ok(PreparedSuite { registries, runs })
    }
}

/// Parses one stanza line. `family=` may list several comma-separated
/// specs; the stanza then expands to one [`SuiteStanza`] per family —
/// the cross-product shorthand — all sharing the line's other fields.
fn parse_stanza(line: &str) -> Result<Vec<SuiteStanza>, String> {
    let mut families: Option<Vec<FamilySpec>> = None;
    let mut stanza = SuiteStanza {
        label: None,
        family: FamilySpec::RandomTrees, // placeholder until `family=` lands
        sizes: None,
        seeds: None,
        detectors: DetectorSelect::All,
        metric: None,
        k: None,
    };
    for field in line.split(';') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("field {field:?} is not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(format!("field {key:?} has an empty value"));
        }
        match key {
            "family" => {
                let specs: Result<Vec<FamilySpec>, String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|piece| !piece.is_empty())
                    .map(FamilySpec::parse)
                    .collect();
                let specs = specs?;
                if specs.is_empty() {
                    return Err(format!("family list {value:?} expands to no families"));
                }
                families = Some(specs);
            }
            "sizes" => stanza.sizes = Some(parse_size_spec(value)?),
            "seeds" => stanza.seeds = Some(parse_seed_spec(value)?),
            "detectors" => {
                stanza.detectors = if value == "all" {
                    DetectorSelect::All
                } else {
                    DetectorSelect::Ids(
                        value.split(',').map(|s| s.trim().to_string()).collect(),
                    )
                };
            }
            "metric" => {
                stanza.metric =
                    Some(Metric::parse(value).ok_or_else(|| format!("unknown metric {value:?}"))?);
            }
            "k" => {
                stanza.k =
                    Some(value.parse().map_err(|_| format!("bad k value {value:?}"))?);
            }
            "label" => stanza.label = Some(value.to_string()),
            other => {
                return Err(format!(
                    "unknown field {other:?} (known: family, sizes, seeds, detectors, metric, k, label)"
                ))
            }
        }
    }
    let families = families.ok_or_else(|| "stanza is missing the family= field".to_string())?;
    // With several families an explicit label gains a family suffix so
    // the expanded scenarios stay distinguishable in reports.
    let suffix_labels = families.len() > 1 && stanza.label.is_some();
    Ok(families
        .into_iter()
        .map(|family| {
            let mut expanded = stanza.clone();
            if suffix_labels {
                expanded.label = stanza.label.as_ref().map(|l| format!("{l} · {family}"));
            }
            expanded.family = family;
            expanded
        })
        .collect())
}

/// Resolves a stanza's detector selection into registry entry indices
/// (registration order, deduplicated).
fn resolve_detectors(
    registry: &DetectorRegistry,
    select: &DetectorSelect,
) -> Result<Vec<usize>, String> {
    match select {
        DetectorSelect::All => Ok((0..registry.len()).collect()),
        DetectorSelect::Ids(fragments) => {
            let mut chosen: Vec<usize> = Vec::new();
            for fragment in fragments {
                let matches: Vec<usize> = registry
                    .entries()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.id.contains(fragment.as_str()))
                    .map(|(i, _)| i)
                    .collect();
                if matches.is_empty() {
                    let ids: Vec<&str> = registry.iter().map(|e| e.id.as_str()).collect();
                    return Err(format!(
                        "detector fragment {fragment:?} matches no registry entry (have: {})",
                        ids.join(", ")
                    ));
                }
                for i in matches {
                    if !chosen.contains(&i) {
                        chosen.push(i);
                    }
                }
            }
            chosen.sort_unstable();
            Ok(chosen)
        }
    }
}

/// One resolved stanza: the scenario plus its registry selection.
#[derive(Debug)]
struct PreparedRun {
    scenario: Scenario,
    registry: usize,
    entries: Vec<usize>,
}

/// A suite resolved against a profile, ready to run on one engine.
#[derive(Debug)]
pub struct PreparedSuite {
    registries: Vec<(usize, DetectorRegistry)>,
    runs: Vec<PreparedRun>,
}

impl PreparedSuite {
    /// Number of scenarios in the suite.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the suite is empty (never true for a parsed suite).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The resolved scenarios, in stanza order.
    pub fn scenarios(&self) -> impl Iterator<Item = &Scenario> {
        self.runs.iter().map(|r| &r.scenario)
    }

    /// Runs every scenario through `engine` in ONE shared pass — one
    /// worker pool, one graph cache, one result store, one schedule
    /// and thread budget (see [`Engine::run_suite`]).
    pub fn run(&self, engine: &Engine) -> SuiteOutcome {
        let detector_lists: Vec<Vec<&dyn Detector>> = self
            .runs
            .iter()
            .map(|run| {
                run.entries
                    .iter()
                    .map(|&i| {
                        self.registries[run.registry].1.entries()[i]
                            .detector
                            .as_ref()
                    })
                    .collect()
            })
            .collect();
        let items: Vec<(&Scenario, &[&dyn Detector])> = self
            .runs
            .iter()
            .zip(&detector_lists)
            .map(|(run, dets)| (&run.scenario, dets.as_slice()))
            .collect();
        engine.run_suite(&items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stanzas_with_defaults_and_overrides() {
        let suite = Suite::parse(
            "# a comment\n\
             family=planted:4; sizes=24,32; seeds=0..2\n\
             \n\
             family=ws:4:0.1; seeds=0,7,42; metric=congestion; label=small world; k=3\n",
        )
        .unwrap();
        assert_eq!(suite.stanzas.len(), 2);
        let a = &suite.stanzas[0];
        assert_eq!(a.family, FamilySpec::Planted { l: 4 });
        assert_eq!(a.sizes, Some(vec![24, 32]));
        assert_eq!(a.seeds, Some(vec![0, 1]));
        assert_eq!(a.detectors, DetectorSelect::All);
        assert_eq!(a.metric, None);
        let b = &suite.stanzas[1];
        assert_eq!(b.seeds, Some(vec![0, 7, 42]), "explicit seed lists");
        assert_eq!(b.metric, Some(Metric::MaxCongestion));
        assert_eq!(b.label.as_deref(), Some("small world"));
        assert_eq!(b.k, Some(3));
    }

    #[test]
    fn family_lists_expand_to_the_cross_product() {
        let suite = Suite::parse(
            "family=er:3, ws:4:0.1 ,torus; sizes=24; seeds=0..2; metric=congestion; k=3\n",
        )
        .unwrap();
        assert_eq!(suite.stanzas.len(), 3, "one stanza per listed family");
        let names: Vec<String> = suite.stanzas.iter().map(|s| s.family.to_string()).collect();
        assert_eq!(names, vec!["er:3", "ws:4:0.1", "torus"]);
        for stanza in &suite.stanzas {
            // Every expanded stanza shares the line's other fields.
            assert_eq!(stanza.sizes, Some(vec![24]));
            assert_eq!(stanza.seeds, Some(vec![0, 1]));
            assert_eq!(stanza.metric, Some(Metric::MaxCongestion));
            assert_eq!(stanza.k, Some(3));
        }
        // An explicit label gains a family suffix under expansion, and
        // stays untouched for a single family.
        let suite =
            Suite::parse("family=er:3,torus; label=pair\nfamily=trees; label=solo\n").unwrap();
        assert_eq!(suite.stanzas[0].label.as_deref(), Some("pair · er:3"));
        assert_eq!(suite.stanzas[1].label.as_deref(), Some("pair · torus"));
        assert_eq!(suite.stanzas[2].label.as_deref(), Some("solo"));
    }

    #[test]
    fn empty_family_expansions_are_line_numbered_errors() {
        let err = Suite::parse("family=planted:4\nfamily=,\n").unwrap_err();
        assert!(err.contains("suite line 2"), "{err}");
        assert!(err.contains("expands to no families"), "{err}");
        // A bad spec inside the list still names the offending piece.
        let err = Suite::parse("family=er:3,nope\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("known families"), "{err}");
    }

    #[test]
    fn family_errors_carry_line_numbers_and_the_catalog() {
        let err = Suite::parse("family=planted:4\nfamily=nope\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("known families"), "{err}");
        let err = Suite::parse("sizes=24\n").unwrap_err();
        assert!(err.contains("missing the family"), "{err}");
        let err = Suite::parse("family=trees; bogus=1\n").unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
        assert!(Suite::parse("# nothing\n").is_err());
    }

    #[test]
    fn seed_specs_accept_ranges_and_lists() {
        assert_eq!(parse_seed_spec("0..3").unwrap(), vec![0, 1, 2]);
        assert_eq!(parse_seed_spec("0,7,42").unwrap(), vec![0, 7, 42]);
        assert_eq!(parse_seed_spec(" 5 ").unwrap(), vec![5]);
        assert!(parse_seed_spec("3..3").is_err());
        assert!(parse_seed_spec("a..b").is_err());
        assert!(parse_seed_spec("1,x").is_err());
    }

    #[test]
    fn prepare_resolves_detors_and_profile_defaults() {
        let suite = Suite::parse(
            "family=planted:4; sizes=24; seeds=0..1; detectors=color-bfs\n\
             family=trees\n",
        )
        .unwrap();
        let prepared = suite.prepare(RunProfile::FastCi, 2, None).unwrap();
        assert_eq!(prepared.len(), 2);
        let scenarios: Vec<&Scenario> = prepared.scenarios().collect();
        assert_eq!(scenarios[0].name(), "planted:4");
        // Stanza 2 inherits the fast-ci default grid.
        assert_eq!(
            scenarios[1].sizes_configured(),
            RunProfile::FastCi.default_sizes()
        );
        // The fragment picked a strict subset of the registry.
        assert!(!prepared.runs[0].entries.is_empty());
        assert!(prepared.runs[0].entries.len() < prepared.runs[1].entries.len());
    }

    #[test]
    fn prepare_rejects_unknown_detector_fragments() {
        let suite = Suite::parse("family=trees; detectors=not-a-detector\n").unwrap();
        let err = suite.prepare(RunProfile::FastCi, 2, None).unwrap_err();
        assert!(err.contains("matches no registry entry"), "{err}");
        assert!(err.contains("stanza 1"), "{err}");
    }

    #[test]
    fn suite_run_shares_one_engine_pass() {
        // Two stanzas over the same family and grid: the second's units
        // are served by the first's executions (same content address),
        // so the shared pass executes each distinct unit once.
        let suite = Suite::parse(
            "family=planted:4; sizes=24; seeds=0..2; detectors=global-threshold\n\
             family=planted:4; sizes=24; seeds=0..2; detectors=global-threshold; label=again\n",
        )
        .unwrap();
        let prepared = suite.prepare(RunProfile::FastCi, 2, None).unwrap();
        let outcome = prepared.run(&Engine::from_env());
        assert_eq!(outcome.reports.len(), 2);
        assert_eq!(outcome.total_units, 4);
        assert_eq!(outcome.executed_units, 2, "shared cells execute once");
        assert_eq!(outcome.replayed_units, 2);
        // Identical stanzas produce identical rows (names aside).
        assert_eq!(
            outcome.reports[0].rows[0].samples,
            outcome.reports[1].rows[0].samples
        );
    }
}
