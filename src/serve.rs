//! The long-lived detection service: named mutable graph snapshots
//! behind a line-oriented TCP protocol.
//!
//! [`Server`] is the "live traffic" end of the workspace: where `sweep`
//! runs a declared experiment to completion, `serve` stays up, holds
//! any number of named [`MutableGraph`] snapshots, and answers
//! detection and edge-update requests as they arrive — std-only
//! (thread-per-connection over [`std::net::TcpListener`], hand-rolled
//! flat JSON lines, no new dependencies).
//!
//! # Protocol
//!
//! One request per line, one response per line, both flat JSON objects
//! (string/number/bool values only — the same shape the result store
//! writes). The `op` field selects the operation:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"ping"}` | `{"ok":true,"op":"ping"}` |
//! | `{"op":"load","name":"g","family":"planted:4","n":64,"seed":7}` | snapshot created (or replaced) from the [`FamilySpec`] catalog |
//! | `{"op":"update","name":"g","action":"insert","u":1,"v":2}` | one edge insert/delete against the named snapshot |
//! | `{"op":"detect","name":"g","detector":"color-bfs","seed":0}` | verdict line (see below) |
//! | `{"op":"stats"}` | per-snapshot counters, including the `replayed` dedup counter, plus process-wide uptime/connection/rejection totals |
//! | `{"op":"snapshots"}` | the snapshot names, sorted |
//! | `{"op":"metrics"}` | Prometheus-style text exposition of the process telemetry registry in the `exposition` field |
//! | `{"op":"shutdown"}` | acknowledges, then stops accepting connections |
//!
//! Errors come back as `{"ok":false,"op":…,"error":"…"}` on the same
//! line; the connection stays usable.
//!
//! # Determinism and deduplication
//!
//! A detect request is resolved to a work unit content-addressed by
//! `(graph content fingerprint, n, seed, detector id, detector
//! configuration, budget)` — the same
//! [`canonical_unit`](crate::engine::store::canonical_unit) machinery
//! the experiment engine uses, with the graph's serialized edge set
//! taking the place of a family fingerprint. With a store directory
//! configured, the unit is appended on first execution and **replayed
//! without invoking the detector** whenever the same request arrives
//! again — across connections and across server restarts. The verdict
//! line is rendered from the stored record only, so a replayed
//! duplicate is byte-identical to the original response; whether a
//! request executed or replayed is visible exclusively in the `stats`
//! counters. Updating a snapshot changes its content fingerprint and
//! with it every unit key, so stale verdicts can never be served.
//!
//! # Admission control
//!
//! At most `max_inflight` detect requests execute concurrently; a
//! request that cannot acquire a slot within the configured
//! [`Schedule`]'s wall-clock cap is rejected with an `admission:` error
//! (and counted) instead of queueing unboundedly. Replayed duplicates
//! bypass the slots entirely — answering from the store is cheap and
//! cannot oversubscribe the machine. Each executed detection runs
//! under the server's per-request [`Budget`], so no single request can
//! hold a worker forever.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use congest_graph::{serialize, FamilySpec, MutableGraph, NodeId};
use congest_telemetry as telemetry;
use even_cycle::Budget;

use crate::engine::store::{
    canonical_unit, json_escape, json_f64, parse_flat, unit_key, Field, ResultStore, UnitRecord,
    UnitStatus,
};
use crate::engine::{record_detection, RunProfile, Schedule};
use crate::registry::DetectorRegistry;
use crate::scenario::Metric;

/// Server configuration: which registry the detectors come from, the
/// per-request budget, the admission-control schedule, and the optional
/// dedup store.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    profile: RunProfile,
    k: usize,
    budget: Budget,
    schedule: Schedule,
    store_dir: Option<PathBuf>,
    max_inflight: usize,
}

impl ServeConfig {
    /// A server at the given profile and family parameter `k`, with the
    /// profile's budget, an uncapped schedule, no store, and 2 inflight
    /// detection slots.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (the registry's constraint).
    pub fn new(profile: RunProfile, k: usize) -> Self {
        assert!(k >= 2, "the registry needs k >= 2");
        ServeConfig {
            profile,
            k,
            budget: profile.budget(),
            schedule: Schedule::default(),
            store_dir: None,
            max_inflight: 2,
        }
    }

    /// Overrides the per-request budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the admission-control schedule; its wall-clock cap bounds
    /// how long a detect request may wait for an execution slot.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Dedups detection requests through the content-addressed result
    /// store under `dir` (shareable with `sweep` stores; the key
    /// namespaces cannot collide).
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Caps concurrently *executing* detect requests (replays are not
    /// counted against the cap).
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight == 0`.
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        assert!(max_inflight > 0, "need at least one detection slot");
        self.max_inflight = max_inflight;
        self
    }
}

/// Serve telemetry, resolved once per process. Process-wide by design:
/// the `stats` op's uptime/connection/rejection totals and the
/// `metrics` exposition both read these, so they survive individual
/// [`ServeState`] lifetimes.
struct ServeMetrics {
    connections_total: Arc<telemetry::Counter>,
    connections_active: Arc<telemetry::Gauge>,
    requests_total: Arc<telemetry::Counter>,
    rejections_total: Arc<telemetry::Counter>,
    inflight: Arc<telemetry::Gauge>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        ServeMetrics {
            connections_total: registry.counter("serve.connections.total"),
            connections_active: registry.gauge("serve.connections.active"),
            requests_total: registry.counter("serve.requests.total"),
            rejections_total: registry.counter("serve.rejections.total"),
            inflight: registry.gauge("serve.inflight"),
        }
    })
}

/// The per-op latency histogram for `op`, from the process registry.
/// Ops outside the protocol share one `unknown` series so a client
/// typo cannot grow the registry unboundedly.
fn op_latency(op: &str) -> Arc<telemetry::Histogram> {
    let registry = telemetry::Registry::global();
    match op {
        "ping" => registry.histogram("serve.op_ns.ping"),
        "load" => registry.histogram("serve.op_ns.load"),
        "update" => registry.histogram("serve.op_ns.update"),
        "detect" => registry.histogram("serve.op_ns.detect"),
        "stats" => registry.histogram("serve.op_ns.stats"),
        "snapshots" => registry.histogram("serve.op_ns.snapshots"),
        "metrics" => registry.histogram("serve.op_ns.metrics"),
        "shutdown" => registry.histogram("serve.op_ns.shutdown"),
        _ => registry.histogram("serve.op_ns.unknown"),
    }
}

/// Per-snapshot counters, reported by the `stats` op.
#[derive(Debug, Default, Clone)]
struct SnapshotStats {
    updates: u64,
    detects: u64,
    executed: u64,
    replayed: u64,
    rejections: u64,
}

/// One named snapshot: the mutable graph plus its counters.
#[derive(Debug)]
struct Snapshot {
    graph: MutableGraph,
    stats: SnapshotStats,
}

// Lock-poisoning messages: these panics are internal invariants, not
// protocol errors — a lock is poisoned only if another handler thread
// already panicked, and the auditor's R4 rule requires each one to be
// documented rather than a bare unwrap().
const SNAPSHOTS_POISONED: &str = "snapshots mutex poisoned: a handler thread panicked";
const STORE_POISONED: &str = "store mutex poisoned: a handler thread panicked";
const ADMISSION_POISONED: &str = "admission counter mutex poisoned: a handler thread panicked";

/// The shared server state every connection thread works against.
#[derive(Debug)]
struct ServeState {
    snapshots: Mutex<BTreeMap<String, Snapshot>>,
    store: Mutex<Option<ResultStore>>,
    registry: DetectorRegistry,
    budget: Budget,
    schedule: Schedule,
    inflight: Mutex<usize>,
    slot_freed: Condvar,
    max_inflight: usize,
    admission_rejected: Mutex<u64>,
    shutdown: AtomicBool,
    started: Instant,
}

impl ServeState {
    fn new(config: &ServeConfig) -> std::io::Result<ServeState> {
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        Ok(ServeState {
            snapshots: Mutex::new(BTreeMap::new()),
            store: Mutex::new(store),
            registry: config.profile.registry(config.k),
            budget: config.budget.clone(),
            schedule: config.schedule,
            inflight: Mutex::new(0),
            slot_freed: Condvar::new(),
            max_inflight: config.max_inflight,
            admission_rejected: Mutex::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// Tries to acquire one execution slot, waiting at most the
    /// schedule's wall-clock cap. `false` means the request is refused
    /// by admission control.
    fn acquire_slot(&self) -> bool {
        let deadline = self.schedule.wall_clock_cap.map(|cap| Instant::now() + cap);
        let mut inflight = self
            .inflight
            .lock()
            .expect("inflight mutex poisoned: a handler thread panicked");
        while *inflight >= self.max_inflight {
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    inflight = self
                        .slot_freed
                        .wait_timeout(inflight, d - now)
                        .expect("slot condvar poisoned: a handler thread panicked")
                        .0;
                }
                None => {
                    inflight = self
                        .slot_freed
                        .wait(inflight)
                        .expect("slot condvar poisoned: a handler thread panicked")
                }
            }
        }
        *inflight += 1;
        serve_metrics().inflight.set(*inflight as i64);
        true
    }

    fn release_slot(&self) {
        let mut inflight = self
            .inflight
            .lock()
            .expect("inflight mutex poisoned: a handler thread panicked");
        *inflight -= 1;
        serve_metrics().inflight.set(*inflight as i64);
        drop(inflight);
        self.slot_freed.notify_one();
    }

    /// Handles one request line; returns the response line (without
    /// newline) and whether this request asked the server to shut down.
    /// Every request is counted and its latency recorded under its op's
    /// histogram; with a recorder installed each request also emits a
    /// `serve.op` span.
    fn handle(&self, line: &str) -> (String, bool) {
        let started = Instant::now();
        serve_metrics().requests_total.inc();
        let parsed = parse_flat(line);
        let op = parsed
            .as_ref()
            .and_then(|f| f.get("op"))
            .and_then(Field::as_str)
            .unwrap_or("?")
            .to_string();
        let mut span = telemetry::Span::begin("serve.op").with("request_op", op.as_str());
        let response = match parsed {
            None => (err_line("?", "request is not a flat JSON object"), false),
            Some(fields) => self.dispatch(&op, &fields),
        };
        span.push("ok", response.0.starts_with("{\"ok\":true"));
        op_latency(&op).record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        response
    }

    /// Routes one parsed request to its op handler.
    fn dispatch(&self, op: &str, fields: &FlatFields) -> (String, bool) {
        if op == "?" {
            return (err_line("?", "request has no \"op\" field"), false);
        }
        let result = match op {
            "ping" => Ok("{\"ok\":true,\"op\":\"ping\"}".to_string()),
            "load" => self.op_load(fields),
            "update" => self.op_update(fields),
            "detect" => self.op_detect(fields),
            "stats" => self.op_stats(fields),
            "snapshots" => Ok(self.op_snapshots()),
            "metrics" => Ok(op_metrics()),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                return ("{\"ok\":true,\"op\":\"shutdown\"}".to_string(), true);
            }
            other => Err(format!(
                "unknown op {other:?} (known: ping, load, update, detect, stats, snapshots, metrics, shutdown)"
            )),
        };
        match result {
            Ok(line) => (line, false),
            Err(msg) => (err_line(op, &msg), false),
        }
    }

    /// `load`: build a catalog instance and (re)bind it to a name.
    fn op_load(&self, fields: &FlatFields) -> Result<String, String> {
        let name = req_str(fields, "name")?;
        let spec = FamilySpec::parse(req_str(fields, "family")?)?;
        let n = opt_usize(fields, "n")?.unwrap_or(64);
        let seed = opt_u64(fields, "seed")?.unwrap_or(0);
        let graph = spec.build(n, seed);
        let (nodes, edges) = (graph.node_count(), graph.edge_count());
        self.snapshots.lock().expect(SNAPSHOTS_POISONED).insert(
            name.to_string(),
            Snapshot {
                graph: MutableGraph::from_graph(graph),
                stats: SnapshotStats::default(),
            },
        );
        Ok(format!(
            "{{\"ok\":true,\"op\":\"load\",\"name\":\"{}\",\"family\":\"{}\",\"nodes\":{nodes},\"edges\":{edges}}}",
            json_escape(name),
            json_escape(&spec.canonical_label()),
        ))
    }

    /// `update`: one edge insert or delete against a named snapshot.
    fn op_update(&self, fields: &FlatFields) -> Result<String, String> {
        let name = req_str(fields, "name")?;
        let action = req_str(fields, "action")?;
        let u = node_id(req_u64(fields, "u")?)?;
        let v = node_id(req_u64(fields, "v")?)?;
        let mut snapshots = self.snapshots.lock().expect(SNAPSHOTS_POISONED);
        let snapshot = snapshots
            .get_mut(name)
            .ok_or_else(|| format!("no snapshot named {name:?} (load it first)"))?;
        let applied = match action {
            "insert" => snapshot.graph.insert_edge(u, v),
            "delete" => snapshot.graph.delete_edge(u, v),
            other => return Err(format!("unknown action {other:?} (want insert or delete)")),
        }
        .map_err(|e| e.to_string())?;
        snapshot.stats.updates += 1;
        Ok(format!(
            "{{\"ok\":true,\"op\":\"update\",\"name\":\"{}\",\"action\":\"{}\",\"applied\":{applied},\"edges\":{}}}",
            json_escape(name),
            json_escape(action),
            snapshot.graph.edge_count(),
        ))
    }

    /// `detect`: run (or replay) one detector against a named snapshot.
    fn op_detect(&self, fields: &FlatFields) -> Result<String, String> {
        let name = req_str(fields, "name")?;
        let fragment = req_str(fields, "detector")?;
        let seed = opt_u64(fields, "seed")?.unwrap_or(0);
        let metric = match fields.get("metric").and_then(Field::as_str) {
            Some(spec) => Metric::parse(spec).ok_or_else(|| format!("unknown metric {spec:?}"))?,
            None => Metric::Rounds,
        };

        // Resolve the detector by id fragment — exactly one match, so
        // responses cannot silently switch algorithms.
        let matches: Vec<usize> = self
            .registry
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.id.contains(fragment))
            .map(|(i, _)| i)
            .collect();
        let entry = match matches.as_slice() {
            [] => {
                let ids: Vec<&str> = self.registry.iter().map(|e| e.id.as_str()).collect();
                return Err(format!(
                    "detector {fragment:?} matches no registry entry (have: {})",
                    ids.join(", ")
                ));
            }
            [i] => &self.registry.entries()[*i],
            many => {
                let ids: Vec<&str> = many
                    .iter()
                    .map(|&i| self.registry.entries()[i].id.as_str())
                    .collect();
                return Err(format!(
                    "detector {fragment:?} is ambiguous (matches: {})",
                    ids.join(", ")
                ));
            }
        };

        // Snapshot the graph under the lock, then run detection without
        // it — updates arriving during a long detection act on the next
        // request's snapshot, never on this one's.
        let graph = {
            let snapshots = self.snapshots.lock().expect(SNAPSHOTS_POISONED);
            let snapshot = snapshots
                .get(name)
                .ok_or_else(|| format!("no snapshot named {name:?} (load it first)"))?;
            snapshot.graph.snapshot()
        };
        let n = graph.node_count();

        // Content address: the serialized edge set is the graph's
        // identity (deterministic — CSR adjacency is canonically
        // sorted), so equal graphs dedup across names, connections, and
        // restarts, and any applied update moves the key.
        let fingerprint = unit_key(&serialize::to_text(&graph));
        let key = unit_key(&canonical_unit(
            &format!("serve:{fingerprint}"),
            n,
            seed,
            &entry.id,
            &entry.detector.config_fingerprint(),
            &self.budget,
        ));

        let replayed = self
            .store
            .lock()
            .expect(STORE_POISONED)
            .as_ref()
            .and_then(|s| s.get(&key))
            .filter(|r| r.det == entry.id && r.n == n && r.seed == seed)
            .cloned();
        let (record, was_replayed) = match replayed {
            Some(record) => (record, true),
            None => {
                if !self.acquire_slot() {
                    *self.admission_rejected.lock().expect(ADMISSION_POISONED) += 1;
                    serve_metrics().rejections_total.inc();
                    return Err(format!(
                        "admission: all {} detection slot(s) stayed busy past the wall-clock cap; retry later",
                        self.max_inflight
                    ));
                }
                let record = record_detection(
                    metric,
                    &graph,
                    &self.budget,
                    entry.detector.as_ref(),
                    &entry.id,
                    &key,
                    n,
                    seed,
                );
                self.release_slot();
                if let Some(store) = self.store.lock().expect(STORE_POISONED).as_mut() {
                    store
                        .append(std::slice::from_ref(&record))
                        .map_err(|e| format!("result store rejected the record: {e}"))?;
                }
                (record, false)
            }
        };

        {
            let mut snapshots = self.snapshots.lock().expect(SNAPSHOTS_POISONED);
            if let Some(snapshot) = snapshots.get_mut(name) {
                snapshot.stats.detects += 1;
                if was_replayed {
                    snapshot.stats.replayed += 1;
                } else {
                    snapshot.stats.executed += 1;
                }
                if record.rejected {
                    snapshot.stats.rejections += 1;
                }
            }
        }

        // The verdict line is a pure function of the record: a replayed
        // duplicate is byte-identical to the original response.
        Ok(verdict_line(name, &record))
    }

    /// `stats`: the per-snapshot counters (one snapshot, or all).
    fn op_stats(&self, fields: &FlatFields) -> Result<String, String> {
        let only = fields.get("name").and_then(Field::as_str);
        let snapshots = self.snapshots.lock().expect(SNAPSHOTS_POISONED);
        if let Some(name) = only {
            if !snapshots.contains_key(name) {
                return Err(format!("no snapshot named {name:?}"));
            }
        }
        let mut out = String::from("{\"ok\":true,\"op\":\"stats\",\"snapshots\":[");
        let mut first = true;
        for (name, snapshot) in snapshots.iter() {
            if only.is_some_and(|o| o != name) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let s = &snapshot.stats;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"nodes\":{},\"edges\":{},\"pending_deltas\":{},\"compactions\":{},\"updates\":{},\"detects\":{},\"executed\":{},\"replayed\":{},\"rejections\":{}}}",
                json_escape(name),
                snapshot.graph.node_count(),
                snapshot.graph.edge_count(),
                snapshot.graph.pending_deltas(),
                snapshot.graph.compactions(),
                s.updates,
                s.detects,
                s.executed,
                s.replayed,
                s.rejections,
            ));
        }
        // Per-state admission counter first (what this server refused),
        // then the process-wide totals from the telemetry registry.
        let metrics = serve_metrics();
        out.push_str(&format!(
            "],\"admission_rejected\":{},\"uptime_seconds\":{},\"total_connections\":{},\"total_rejections\":{}}}",
            *self.admission_rejected.lock().expect(ADMISSION_POISONED),
            self.started.elapsed().as_secs(),
            metrics.connections_total.value(),
            metrics.rejections_total.value(),
        ));
        Ok(out)
    }

    /// `snapshots`: just the sorted names.
    fn op_snapshots(&self) -> String {
        let snapshots = self.snapshots.lock().expect(SNAPSHOTS_POISONED);
        let names: Vec<String> = snapshots
            .keys()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        format!(
            "{{\"ok\":true,\"op\":\"snapshots\",\"names\":[{}]}}",
            names.join(",")
        )
    }
}

/// `metrics`: the process telemetry registry as Prometheus-style text
/// exposition, carried in the `exposition` field of the (line-oriented)
/// response. A scraping bridge can unescape and re-serve it verbatim.
fn op_metrics() -> String {
    let exposition = telemetry::Registry::global()
        .snapshot()
        .to_prometheus("even_cycle");
    format!(
        "{{\"ok\":true,\"op\":\"metrics\",\"content_type\":\"text/plain; version=0.0.4\",\"exposition\":\"{}\"}}",
        json_escape(&exposition)
    )
}

type FlatFields = std::collections::HashMap<String, Field>;

fn err_line(op: &str, msg: &str) -> String {
    format!(
        "{{\"ok\":false,\"op\":\"{}\",\"error\":\"{}\"}}",
        json_escape(op),
        json_escape(msg)
    )
}

fn req_str<'a>(fields: &'a FlatFields, key: &str) -> Result<&'a str, String> {
    fields
        .get(key)
        .and_then(Field::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_u64(fields: &FlatFields, key: &str) -> Result<u64, String> {
    fields
        .get(key)
        .and_then(Field::as_u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn opt_u64(fields: &FlatFields, key: &str) -> Result<Option<u64>, String> {
    match fields.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a non-negative integer")),
    }
}

fn opt_usize(fields: &FlatFields, key: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64(fields, key)?.map(|v| v as usize))
}

fn node_id(raw: u64) -> Result<NodeId, String> {
    u32::try_from(raw)
        .map(NodeId::new)
        .map_err(|_| format!("endpoint {raw} does not fit a node id"))
}

/// Renders the deterministic verdict line for one detect request —
/// every field comes from the [`UnitRecord`], so replays reproduce the
/// executed response byte for byte.
fn verdict_line(name: &str, record: &UnitRecord) -> String {
    let status = match &record.status {
        UnitStatus::Ok => "ok",
        UnitStatus::BudgetExceeded => "budget-exceeded",
        UnitStatus::Error(_) => "error",
    };
    let mut line = format!(
        "{{\"ok\":true,\"op\":\"detect\",\"name\":\"{}\",\"detector\":\"{}\",\"key\":\"{}\",\"n\":{},\"seed\":{},\"status\":\"{}\",\"rejected\":{},\"value\":{},\"rounds\":{},\"supersteps\":{},\"messages\":{},\"words\":{},\"max_congestion\":{},\"iterations\":{}",
        json_escape(name),
        json_escape(&record.det),
        json_escape(&record.key),
        record.n,
        record.seed,
        status,
        record.rejected,
        json_f64(record.value),
        record.rounds,
        record.supersteps,
        record.messages,
        record.words,
        record.max_congestion,
        record.iterations,
    );
    if let UnitStatus::Error(msg) = &record.status {
        line.push_str(&format!(",\"error\":\"{}\"", json_escape(msg)));
    }
    line.push('}');
    line
}

/// The listening server: bind, then [`Server::run`] the accept loop
/// (thread per connection) until a `shutdown` request arrives.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the server (use port 0 for an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures and store-open failures.
    pub fn bind(addr: impl ToSocketAddrs, config: &ServeConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServeState::new(config)?),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop: one thread per connection, until a
    /// `shutdown` request flips the flag. Returns after every
    /// connection thread has drained (so a clean shutdown leaves no
    /// half-written responses).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut handles = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.state.shutdown.load(Ordering::SeqCst) {
                // The nudge connection (or a late client) after
                // shutdown: drop it and stop accepting.
                break;
            }
            let state = Arc::clone(&self.state);
            handles.push(std::thread::spawn(move || {
                handle_connection(stream, &state, addr);
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Serves one connection: read request lines, write response lines,
/// until EOF or a shutdown request (which also nudges the accept loop
/// awake via a throwaway connection to `addr`).
fn handle_connection(stream: TcpStream, state: &ServeState, addr: std::net::SocketAddr) {
    let metrics = serve_metrics();
    metrics.connections_total.inc();
    metrics.connections_active.inc();
    let _conn_span = telemetry::Span::begin("serve.connection");
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            metrics.connections_active.dec();
            return;
        }
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = state.handle(&line);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            // Wake the blocking accept() so Server::run can observe the
            // flag and drain.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    metrics.connections_active.dec();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(config: &ServeConfig) -> ServeState {
        ServeState::new(config).unwrap()
    }

    fn ok(resp: &(String, bool)) -> &str {
        assert!(resp.0.starts_with("{\"ok\":true"), "{}", resp.0);
        &resp.0
    }

    #[test]
    fn protocol_ping_load_update_detect_stats() {
        let s = state(&ServeConfig::new(RunProfile::FastCi, 2));
        assert_eq!(
            ok(&s.handle("{\"op\":\"ping\"}")),
            "{\"ok\":true,\"op\":\"ping\"}"
        );

        let load = s.handle(
            "{\"op\":\"load\",\"name\":\"g\",\"family\":\"planted:4\",\"n\":24,\"seed\":7}",
        );
        assert!(ok(&load).contains("\"nodes\":"), "{}", load.0);

        let upd =
            s.handle("{\"op\":\"update\",\"name\":\"g\",\"action\":\"insert\",\"u\":0,\"v\":5}");
        assert!(ok(&upd).contains("\"applied\":"), "{}", upd.0);

        let det = s.handle(
            "{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"classical/C4/global-threshold-color-bfs\",\"seed\":1}",
        );
        assert!(ok(&det).contains("\"rejected\":"), "{}", det.0);

        let stats = s.handle("{\"op\":\"stats\"}");
        assert!(ok(&stats).contains("\"updates\":1"), "{}", stats.0);
        assert!(stats.0.contains("\"detects\":1"), "{}", stats.0);

        let names = s.handle("{\"op\":\"snapshots\"}");
        assert!(ok(&names).contains("\"names\":[\"g\"]"), "{}", names.0);
    }

    #[test]
    fn metrics_op_returns_prometheus_exposition() {
        let s = state(&ServeConfig::new(RunProfile::FastCi, 2));
        // A ping first, so at least one op-latency histogram exists.
        let _ = s.handle("{\"op\":\"ping\"}");
        let (resp, shutdown) = s.handle("{\"op\":\"metrics\"}");
        assert!(!shutdown);
        assert!(
            resp.starts_with("{\"ok\":true,\"op\":\"metrics\""),
            "{resp}"
        );
        assert!(resp.contains("# TYPE even_cycle_"), "{resp}");
        assert!(
            resp.contains("even_cycle_serve_op_ns_ping"),
            "ping latency series missing: {resp}"
        );
    }

    #[test]
    fn stats_reports_process_wide_fields() {
        let s = state(&ServeConfig::new(RunProfile::FastCi, 2));
        let (resp, _) = s.handle("{\"op\":\"stats\"}");
        for field in [
            "\"uptime_seconds\":",
            "\"total_connections\":",
            "\"total_rejections\":",
        ] {
            assert!(resp.contains(field), "{field} missing from {resp}");
        }
    }

    #[test]
    fn errors_are_reported_inline_not_fatally() {
        let s = state(&ServeConfig::new(RunProfile::FastCi, 2));
        for (request, expect) in [
            ("not json", "flat JSON"),
            ("{\"name\":\"g\"}", "no \\\"op\\\" field"),
            ("{\"op\":\"nope\"}", "unknown op"),
            (
                "{\"op\":\"load\",\"name\":\"g\",\"family\":\"nope\"}",
                "known families",
            ),
            (
                "{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\"}",
                "no snapshot named",
            ),
            (
                "{\"op\":\"update\",\"name\":\"g\",\"action\":\"insert\",\"u\":0,\"v\":1}",
                "no snapshot",
            ),
            ("{\"op\":\"stats\",\"name\":\"g\"}", "no snapshot"),
        ] {
            let (resp, shutdown) = s.handle(request);
            assert!(!shutdown);
            assert!(resp.starts_with("{\"ok\":false"), "{request} -> {resp}");
            assert!(resp.contains(expect), "{request} -> {resp}");
        }
        // Ambiguous and unknown detector fragments both name candidates.
        let _ = s.handle("{\"op\":\"load\",\"name\":\"g\",\"family\":\"trees\",\"n\":16}");
        let (resp, _) = s.handle("{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"C4\"}");
        assert!(resp.contains("ambiguous"), "{resp}");
        let (resp, _) = s.handle("{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"zzz\"}");
        assert!(resp.contains("matches no registry entry"), "{resp}");
    }

    #[test]
    fn duplicate_detects_replay_from_the_store_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ec-serve-dedup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = state(&ServeConfig::new(RunProfile::FastCi, 2).store(&dir));
        let _ = s.handle(
            "{\"op\":\"load\",\"name\":\"g\",\"family\":\"planted:4\",\"n\":24,\"seed\":3}",
        );
        let req = "{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\",\"seed\":2}";
        let first = s.handle(req);
        let second = s.handle(req);
        assert_eq!(ok(&first), ok(&second), "duplicates must be byte-identical");
        let stats = s.handle("{\"op\":\"stats\",\"name\":\"g\"}");
        assert!(stats.0.contains("\"executed\":1"), "{}", stats.0);
        assert!(stats.0.contains("\"replayed\":1"), "{}", stats.0);

        // An update moves the content fingerprint: the next detect
        // cannot be served from the stale record.
        let _ =
            s.handle("{\"op\":\"update\",\"name\":\"g\",\"action\":\"insert\",\"u\":0,\"v\":9}");
        let third = s.handle(req);
        assert!(third.0.starts_with("{\"ok\":true"), "{}", third.0);
        let stats = s.handle("{\"op\":\"stats\",\"name\":\"g\"}");
        assert!(stats.0.contains("\"executed\":2"), "{}", stats.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dedup_survives_a_server_restart() {
        let dir = std::env::temp_dir().join(format!("ec-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig::new(RunProfile::FastCi, 2).store(&dir);
        let load = "{\"op\":\"load\",\"name\":\"g\",\"family\":\"planted:4\",\"n\":24,\"seed\":3}";
        let req = "{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\",\"seed\":0}";

        let s1 = state(&config);
        let _ = s1.handle(load);
        let first = s1.handle(req);
        drop(s1);

        // A fresh state over the same store: the same logical graph has
        // the same content fingerprint, so the verdict replays.
        let s2 = state(&config);
        let _ = s2.handle(load);
        let second = s2.handle(req);
        assert_eq!(first.0, second.0);
        let stats = s2.handle("{\"op\":\"stats\",\"name\":\"g\"}");
        assert!(stats.0.contains("\"executed\":0"), "{}", stats.0);
        assert!(stats.0.contains("\"replayed\":1"), "{}", stats.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admission_control_rejects_when_slots_stay_busy() {
        // Zero-duration cap + a hogged slot: the second executing
        // request must be refused, not queued forever.
        let s = state(
            &ServeConfig::new(RunProfile::FastCi, 2)
                .max_inflight(1)
                .schedule(Schedule::default().with_wall_clock_cap(std::time::Duration::ZERO)),
        );
        let _ = s.handle("{\"op\":\"load\",\"name\":\"g\",\"family\":\"planted:4\",\"n\":24}");
        assert!(s.acquire_slot(), "the free slot must be grantable");
        let (resp, _) =
            s.handle("{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\"}");
        assert!(resp.contains("admission:"), "{resp}");
        s.release_slot();
        let (resp, _) =
            s.handle("{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\"}");
        assert!(resp.starts_with("{\"ok\":true"), "{resp}");
        let stats = s.handle("{\"op\":\"stats\"}");
        assert!(stats.0.contains("\"admission_rejected\":1"), "{}", stats.0);
    }
}
