//! `audit` — the determinism auditor's command-line driver.
//!
//! With no file arguments it audits the whole workspace (every `.rs`
//! under `src/`, `crates/`, `tests/`, fixture corpora skipped) and
//! exits 0 only when the tree is clean: no rule violations, no stale
//! waivers, no malformed waivers. With file arguments it audits
//! exactly those files, honoring their fixture directives — the mode
//! the negative-fixture tests and the CI job use.
//!
//! ```text
//! cargo run --bin audit                      # audit the workspace
//! cargo run --bin audit -- --json report.json
//! cargo run --bin audit -- path/to/fixture.rs
//! ```

use congest_auditor::{audit_files, audit_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "audit: source-level determinism rules (R1-R6) for this workspace\n\
     \n\
     USAGE:\n\
     \u{20}   audit [OPTIONS] [FILES...]\n\
     \n\
     OPTIONS:\n\
     \u{20}   --root DIR     workspace root to audit (default: current directory)\n\
     \u{20}   --json PATH    also write the flat-JSON report to PATH\n\
     \u{20}   --quiet        suppress per-diagnostic lines (summary only)\n\
     \u{20}   --help         show this message\n\
     \n\
     With FILES, audits exactly those files (fixture directives are\n\
     honored); without, walks the workspace (fixture files are skipped).\n\
     Exits 0 when clean, 1 on any violation, stale waiver, or malformed\n\
     waiver, 2 on usage or I/O errors."
}

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
    files: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        quiet: false,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                args.root = PathBuf::from(v);
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(v));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("audit: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let outcome = if args.files.is_empty() {
        audit_workspace(&args.root)
    } else {
        audit_files(&args.root, &args.files)
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("audit: {err}");
            return ExitCode::from(2);
        }
    };

    if !args.quiet {
        for d in &outcome.diagnostics {
            println!("{}", d.render());
        }
    }
    let (violations, stale, bad) = outcome.counts();
    eprintln!(
        "audit: {} file(s) scanned, {} fixture(s) skipped: {} violation(s), \
         {} stale waiver(s), {} malformed waiver(s), {} waived",
        outcome.files_scanned,
        outcome.fixtures_skipped,
        violations,
        stale,
        bad,
        outcome.waived.len(),
    );

    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, report::render_json(&outcome) + "\n") {
            eprintln!("audit: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
