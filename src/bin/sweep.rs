//! The experiment-engine driver: profile-configured registry sweeps
//! from the command line, with worker-pool execution and a resumable
//! JSONL result store.
//!
//! ```text
//! cargo run --release -p even-cycle-congest --bin sweep -- \
//!     --profile fast-ci --k 2 --family planted:4 \
//!     --sizes 24,32 --seeds 0..2 --metric rounds \
//!     --workers 2 --store target/sweeps --json
//! ```
//!
//! Every flag is optional: the profile decides the default grid,
//! budget, and schedule, the family defaults to planted `C_{2k}`
//! yes-instances, the worker count falls back to `EVEN_CYCLE_WORKERS`
//! (then 1). Families are parsed by the shared catalog parser
//! (`FamilySpec::parse`) — `sweep --family help` lists every family.
//! `--seeds` accepts a range (`0..3`) or an explicit list (`0,7,42`).
//!
//! **Suite mode** (`--suite FILE`) replaces the single-scenario flags
//! with a line-oriented suite file — one stanza per line
//! (`family=...; sizes=...; seeds=...; detectors=...`) — and runs
//! every stanza through ONE shared engine pass: one worker pool, one
//! graph cache, one result store, one schedule and thread budget. The
//! work summary (`executed E, replayed R of T unit(s)`) goes to
//! stderr, so a replayed suite is machine-checkable (`executed 0`).
//!
//! The store is per-unit content-addressed by the family fingerprint:
//! re-running an identical invocation with `--store` replays it and
//! invokes no detector, *extending* the grid (a size rung, a seed, a
//! detector) executes only the new cells, and changing a family
//! parameter (say `planted:4` → `planted:6`) invalidates exactly its
//! own units. `--schedule cheapest-first` orders pending units by
//! estimated cost and `--max-seconds S` stops dispatching once the cap
//! elapses — skipped units are reported and resumed on the next run,
//! so an expensive `paper-exact` sweep refines progressively across
//! capped runs.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use even_cycle_congest::engine::{pool, RunProfile, ScheduleOrder};
use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
use even_cycle_congest::suite::{parse_seed_spec, parse_size_spec, Suite};
use even_cycle_congest::telemetry;
use even_cycle_congest::FamilySpec;

struct Args {
    profile: RunProfile,
    k: usize,
    suite: Option<String>,
    family: Option<String>,
    sizes: Option<Vec<usize>>,
    seeds: Option<Vec<u64>>,
    metric: Option<Metric>,
    workers: Option<usize>,
    backend: Option<String>,
    sim_threads: Option<usize>,
    store: Option<String>,
    schedule: Option<ScheduleOrder>,
    max_seconds: Option<u64>,
    trace: Option<String>,
    json: bool,
}

fn usage() -> String {
    format!(
        "usage: sweep [--profile paper-exact|practical|fast-ci] [--k K]\n\
         \x20            [--suite FILE | --family SPEC]\n\
         \x20            [--sizes N1,N2,...] [--seeds A..B | --seeds S1,S2,...]\n\
         \x20            [--metric rounds|rounds-per-iter|congestion|messages|words]\n\
         \x20            [--workers W] [--store DIR] [--json]\n\
         \x20            [--backend sequential|parallel[:T]|auto[:N]] [--sim-threads T]\n\
         \x20            [--schedule in-order|cheapest-first] [--max-seconds S]\n\
         \x20            [--trace FILE]  (or EVEN_CYCLE_TRACE=FILE)\n\
         families: {}",
        FamilySpec::catalog_summary()
    )
}

/// `Ok(None)` means `--help` was requested: print usage, exit success.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        profile: RunProfile::Practical,
        k: 2,
        suite: None,
        family: None,
        sizes: None,
        seeds: None,
        metric: None,
        workers: None,
        backend: None,
        sim_threads: None,
        store: None,
        schedule: None,
        max_seconds: None,
        trace: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n{}", usage()))
        };
        match flag.as_str() {
            "--profile" => {
                let v = value("--profile")?;
                args.profile =
                    RunProfile::parse(&v).ok_or_else(|| format!("unknown profile {v:?}"))?;
            }
            "--k" => {
                let v = value("--k")?;
                args.k = v.parse().map_err(|_| format!("bad --k value {v:?}"))?;
                if args.k < 2 {
                    return Err("--k must be at least 2 (the registry needs k >= 2)".to_string());
                }
            }
            "--suite" => args.suite = Some(value("--suite")?),
            "--family" => args.family = Some(value("--family")?),
            "--sizes" => {
                let v = value("--sizes")?;
                args.sizes = Some(parse_size_spec(&v)?);
            }
            "--seeds" => {
                let v = value("--seeds")?;
                args.seeds = Some(parse_seed_spec(&v)?);
            }
            "--metric" => {
                let v = value("--metric")?;
                args.metric =
                    Some(Metric::parse(&v).ok_or_else(|| format!("unknown metric {v:?}"))?);
            }
            "--workers" => {
                let v = value("--workers")?;
                let w: usize = v
                    .parse()
                    .map_err(|_| format!("bad --workers value {v:?}"))?;
                if w == 0 {
                    return Err("--workers must be positive".to_string());
                }
                args.workers = Some(w);
            }
            "--backend" => args.backend = Some(value("--backend")?),
            "--sim-threads" => {
                let v = value("--sim-threads")?;
                let t: usize = v
                    .parse()
                    .map_err(|_| format!("bad --sim-threads value {v:?}"))?;
                if t == 0 {
                    return Err("--sim-threads must be positive".to_string());
                }
                args.sim_threads = Some(t);
            }
            "--store" => args.store = Some(value("--store")?),
            "--schedule" => {
                let v = value("--schedule")?;
                args.schedule = Some(
                    ScheduleOrder::parse(&v).ok_or_else(|| format!("unknown schedule {v:?}"))?,
                );
            }
            "--max-seconds" => {
                let v = value("--max-seconds")?;
                args.max_seconds = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-seconds value {v:?}"))?,
                );
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--json" => args.json = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.suite.is_some()
        && (args.family.is_some()
            || args.sizes.is_some()
            || args.seeds.is_some()
            || args.metric.is_some())
    {
        return Err(
            "--suite replaces --family/--sizes/--seeds/--metric (per-stanza fields live in \
             the suite file)"
                .to_string(),
        );
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // `--trace FILE` (or EVEN_CYCLE_TRACE=FILE) streams telemetry
    // events to a JSONL sink for the whole run; on exit the sink is
    // flushed and a Chrome trace_event mirror (`FILE.chrome.json`) is
    // written next to it for chrome://tracing / Perfetto.
    let trace = args.trace.clone().or_else(telemetry::trace_path_from_env);
    if let Some(path) = &trace {
        match telemetry::JsonlSink::create(path) {
            Ok(sink) => telemetry::install(Arc::new(sink)),
            Err(err) => {
                eprintln!("cannot open trace file {path:?}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let code = run(args);
    if let Some(path) = &trace {
        telemetry::flush();
        let chrome = format!("{path}.chrome.json");
        match telemetry::convert_file(std::path::Path::new(path), std::path::Path::new(&chrome)) {
            Ok(events) => eprintln!("trace: {path} ({events} event(s)); chrome: {chrome}"),
            Err(err) => eprintln!("trace: {path}; chrome conversion failed: {err}"),
        }
    }
    code
}

fn run(args: Args) -> ExitCode {
    // Fail fast on a broken EVEN_CYCLE_WORKERS: a typo'd value must not
    // silently serialize the sweep (the library default warns and runs
    // with 1 worker; the sweep driver refuses outright). An explicit
    // --workers takes priority over the environment, so it also
    // overrides a broken value.
    if args.workers.is_none() {
        if let Err(msg) = pool::workers_env_override() {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    // Same refusal for a broken EVEN_CYCLE_SIM_THREADS: the library
    // default would warn and fall back to available parallelism, but a
    // driver asked for a specific intra-run thread count must not run
    // with a different one. An explicit --sim-threads overrides the
    // environment, so it also overrides a broken value.
    if args.sim_threads.is_none() {
        if let Err(msg) = even_cycle_congest::sim::backend::sim_threads_env_override() {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }

    // Resolve --sim-threads before the backend spec: it feeds the
    // default thread count of `parallel` and `auto` backends (the same
    // knob EVEN_CYCLE_SIM_THREADS sets from the environment).
    if let Some(t) = args.sim_threads {
        std::env::set_var(
            even_cycle_congest::sim::backend::SIM_THREADS_ENV,
            t.to_string(),
        );
    }
    let backend = match &args.backend {
        Some(spec) => match even_cycle_congest::sim::Backend::parse(spec) {
            Some(b) => Some(b),
            None => {
                eprintln!("unknown backend {spec:?} (want sequential, parallel[:T], or auto[:N])");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // The engine every mode shares: worker pool, result store,
    // schedule (the profile default layered with the CLI overrides).
    let mut engine = even_cycle_congest::Engine::from_env();
    if let Some(w) = args.workers {
        engine = engine.with_workers(w);
    }
    if let Some(dir) = &args.store {
        engine = engine.with_store(dir);
    }
    let mut schedule = args.profile.schedule();
    if let Some(order) = args.schedule {
        schedule.order = order;
    }
    if let Some(secs) = args.max_seconds {
        schedule = schedule.with_wall_clock_cap(Duration::from_secs(secs));
    }
    engine = engine.with_schedule(schedule);
    if args.max_seconds.is_some() && args.store.is_none() {
        eprintln!(
            "note: --max-seconds without --store: units skipped at the cap \
             are lost instead of resumed next run"
        );
    }

    // ---------- suite mode: every stanza through one engine pass ----------
    if let Some(path) = &args.suite {
        let suite = match Suite::from_file(path) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let prepared = match suite.prepare(args.profile, args.k, backend) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let started = Instant::now();
        let outcome = prepared.run(&engine);
        let elapsed = started.elapsed();
        for report in &outcome.reports {
            if args.json {
                println!("{}", report.to_json());
            } else {
                println!("{}", report.render());
            }
        }
        eprintln!(
            "suite: {} scenario(s); {}",
            outcome.reports.len(),
            outcome.summary(elapsed),
        );
        let skipped = outcome.skipped_units();
        if skipped > 0 {
            eprintln!(
                "wall-clock cap hit: {skipped} unit(s) skipped; re-run the same \
                 command to resume from the store"
            );
        }
        return ExitCode::SUCCESS;
    }

    // ---------- single-scenario mode ----------
    let family = match &args.family {
        Some(spec) => match GraphFamily::parse(spec) {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        },
        None => GraphFamily::planted_cycle(2 * args.k),
    };

    let registry = args.profile.registry(args.k);
    let sizes = args.sizes.unwrap_or_else(|| args.profile.default_sizes());
    let seeds = args
        .seeds
        .unwrap_or_else(|| args.profile.default_seeds().collect());
    let mut scenario = Scenario::new(format!("{} sweep (k = {})", args.profile, args.k), family)
        .sizes(&sizes)
        .seeds(seeds)
        .metric(args.metric.unwrap_or(Metric::Rounds))
        .budget(args.profile.budget());
    if let Some(b) = backend {
        scenario = scenario.backend(b);
    }

    let dets: Vec<&dyn even_cycle_congest::Detector> =
        registry.iter().map(|e| e.detector.as_ref()).collect();
    let started = Instant::now();
    let outcome = engine.run_suite(&[(&scenario, dets.as_slice())]);
    let elapsed = started.elapsed();
    let report = &outcome.reports[0];
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render());
    }
    eprintln!("{}", outcome.summary(elapsed));
    let skipped = report.skipped_units();
    if skipped > 0 {
        eprintln!(
            "wall-clock cap hit: {skipped} unit(s) skipped; re-run the same \
             command to resume from the store"
        );
    }
    ExitCode::SUCCESS
}
