//! The long-lived detection service driver: bind a loopback port and
//! answer line-oriented JSON detection/update requests until a
//! `shutdown` request arrives (see [`even_cycle_congest::serve`] for
//! the protocol).
//!
//! ```text
//! cargo run --release -p even-cycle-congest --bin serve -- \
//!     --profile fast-ci --k 2 --port 0 --port-file target/serve.port \
//!     --store target/serve-store --max-inflight 2 --max-request-seconds 30
//! ```
//!
//! `--port 0` binds an ephemeral port; `--port-file` writes the bound
//! port number so scripts (the CI smoke step) can find it. The store
//! directory makes duplicate detection requests replay without
//! invoking a detector — across connections and across restarts.

use std::process::ExitCode;
use std::time::Duration;

use even_cycle_congest::engine::{RunProfile, Schedule};
use even_cycle_congest::serve::{ServeConfig, Server};

struct Args {
    profile: RunProfile,
    k: usize,
    host: String,
    port: u16,
    port_file: Option<String>,
    store: Option<String>,
    max_inflight: usize,
    max_request_seconds: Option<u64>,
}

fn usage() -> &'static str {
    "usage: serve [--profile paper-exact|practical|fast-ci] [--k K]\n\
     \x20            [--host H] [--port P] [--port-file PATH]\n\
     \x20            [--store DIR] [--max-inflight N] [--max-request-seconds S]"
}

/// `Ok(None)` means `--help` was requested: print usage, exit success.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        profile: RunProfile::Practical,
        k: 2,
        host: "127.0.0.1".to_string(),
        port: 0,
        port_file: None,
        store: None,
        max_inflight: 2,
        max_request_seconds: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n{}", usage()))
        };
        match flag.as_str() {
            "--profile" => {
                let v = value("--profile")?;
                args.profile =
                    RunProfile::parse(&v).ok_or_else(|| format!("unknown profile {v:?}"))?;
            }
            "--k" => {
                let v = value("--k")?;
                args.k = v.parse().map_err(|_| format!("bad --k value {v:?}"))?;
                if args.k < 2 {
                    return Err("--k must be at least 2 (the registry needs k >= 2)".to_string());
                }
            }
            "--host" => args.host = value("--host")?,
            "--port" => {
                let v = value("--port")?;
                args.port = v.parse().map_err(|_| format!("bad --port value {v:?}"))?;
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--store" => args.store = Some(value("--store")?),
            "--max-inflight" => {
                let v = value("--max-inflight")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --max-inflight value {v:?}"))?;
                if n == 0 {
                    return Err("--max-inflight must be positive".to_string());
                }
                args.max_inflight = n;
            }
            "--max-request-seconds" => {
                let v = value("--max-request-seconds")?;
                args.max_request_seconds = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-request-seconds value {v:?}"))?,
                );
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // EVEN_CYCLE_TRACE=FILE streams telemetry events (connection
    // spans, per-op latencies) to a JSONL sink for the whole lifetime
    // of the server; the `metrics` protocol op reads the same registry
    // whether or not a sink is installed.
    if let Some(path) = even_cycle_congest::telemetry::trace_path_from_env() {
        match even_cycle_congest::telemetry::JsonlSink::create(&path) {
            Ok(sink) => even_cycle_congest::telemetry::install(std::sync::Arc::new(sink)),
            Err(err) => {
                eprintln!("serve: cannot open trace file {path:?}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut config = ServeConfig::new(args.profile, args.k).max_inflight(args.max_inflight);
    if let Some(dir) = &args.store {
        config = config.store(dir);
    }
    if let Some(secs) = args.max_request_seconds {
        config =
            config.schedule(Schedule::default().with_wall_clock_cap(Duration::from_secs(secs)));
    }

    let server = match Server::bind((args.host.as_str(), args.port), &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}:{}: {e}", args.host, args.port);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("serve: cannot write port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "serve: listening on {addr} (profile {}, k = {}, {} detection slot(s))",
        args.profile, args.k, args.max_inflight
    );
    let code = match server.run() {
        Ok(()) => {
            eprintln!("serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    };
    even_cycle_congest::telemetry::flush();
    code
}
