//! Run profiles: named experiment configurations mapping onto
//! [`DetectorRegistry`] construction and [`Budget`] defaults.
//!
//! The registry configuration *is* the experiment profile — repetition
//! counts, Grover modes, and declared-success shortcuts decide both
//! what a sweep costs and what its error probability means. Instead of
//! every driver hand-tuning those constants, a sweep names one of
//! three profiles:
//!
//! * **paper-exact** — the paper's constants verbatim (`K = ⌈ε̂(2k)^{2k}⌉`
//!   repetitions, Lemma-bound success probabilities, no shortcuts).
//!   Astronomically conservative and priced accordingly; for
//!   error-probability studies on small grids.
//! * **practical** — the profile the unit tests and Table 1 drivers
//!   use: capped repetitions and declared-success shortcuts that keep
//!   the quantum seed spaces simulable (this is
//!   [`DetectorRegistry::standard`]).
//! * **fast-ci** — a smoke profile: small repetition budgets, sampled
//!   Grover, tiny default grids, and hard budget caps as a safety net,
//!   so a full registry sweep fits in a CI step.

use std::ops::Range;

use even_cycle::{Backend, Budget};

use crate::engine::schedule::Schedule;
use crate::registry::DetectorRegistry;

/// A named experiment configuration; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunProfile {
    /// The paper's constants verbatim.
    PaperExact,
    /// Capped repetitions and simulable quantum shortcuts (the
    /// default).
    Practical,
    /// Smoke-test configuration with hard budget caps.
    FastCi,
}

impl RunProfile {
    /// Every profile, in documentation order.
    pub const ALL: [RunProfile; 3] = [
        RunProfile::PaperExact,
        RunProfile::Practical,
        RunProfile::FastCi,
    ];

    /// The profile's canonical name (`paper-exact`, `practical`,
    /// `fast-ci`).
    pub fn name(self) -> &'static str {
        match self {
            RunProfile::PaperExact => "paper-exact",
            RunProfile::Practical => "practical",
            RunProfile::FastCi => "fast-ci",
        }
    }

    /// Parses a profile name (accepts the canonical spellings and the
    /// underscore variants).
    pub fn parse(s: &str) -> Option<RunProfile> {
        match s {
            "paper-exact" | "paper_exact" | "paper" => Some(RunProfile::PaperExact),
            "practical" => Some(RunProfile::Practical),
            "fast-ci" | "fast_ci" | "ci" => Some(RunProfile::FastCi),
            _ => None,
        }
    }

    /// Builds the detector registry this profile prescribes at family
    /// parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn registry(self, k: usize) -> DetectorRegistry {
        DetectorRegistry::with_profile(k, self)
    }

    /// The default resource budget of the profile. `fast-ci` carries
    /// hard round/message caps so a runaway detector aborts with
    /// [`Verdict::BudgetExceeded`](even_cycle::Verdict::BudgetExceeded)
    /// instead of stalling the pipeline. Every budget carries the
    /// profile's [`RunProfile::backend`] default.
    pub fn budget(self) -> Budget {
        let base = match self {
            RunProfile::PaperExact | RunProfile::Practical => Budget::classical(),
            RunProfile::FastCi => Budget::classical()
                .with_round_cap(2_000_000)
                .with_message_cap(50_000_000),
        };
        base.with_backend(self.backend())
    }

    /// The default simulation backend of the profile. `paper-exact`
    /// sweeps climb to the largest instances (that is what they are
    /// priced for), so they default to [`Backend::auto`]: sequential on
    /// small graphs, parallel supersteps once an instance crosses the
    /// auto threshold. The other profiles stay sequential — their grids
    /// are small and the engine already parallelizes across units.
    /// Transcripts are byte-identical across backends, so this is
    /// purely a wall-clock knob.
    pub fn backend(self) -> Backend {
        match self {
            RunProfile::PaperExact => Backend::auto(),
            RunProfile::Practical | RunProfile::FastCi => Backend::Sequential,
        }
    }

    /// The default scheduling policy of the profile. `paper-exact`
    /// dispatches cheapest-estimated-unit-first: its sweeps are priced
    /// for progressive refinement (run under a wall-clock cap, killed
    /// at the cap, resumed from the store next run), and a
    /// cheapest-first queue banks the most finished units per second.
    /// The other profiles run in canonical order. No profile caps the
    /// wall clock by itself — the cap is an explicit opt-in
    /// ([`Schedule::with_wall_clock_cap`], `sweep --max-seconds`).
    pub fn schedule(self) -> Schedule {
        match self {
            RunProfile::PaperExact => Schedule::cheapest_first(),
            RunProfile::Practical | RunProfile::FastCi => Schedule::in_order(),
        }
    }

    /// The default instance sizes of the profile's sweeps.
    pub fn default_sizes(self) -> Vec<usize> {
        match self {
            RunProfile::PaperExact => vec![48, 64, 96],
            RunProfile::Practical => vec![64, 128, 256],
            RunProfile::FastCi => vec![24, 32],
        }
    }

    /// The default seed sweep of the profile.
    pub fn default_seeds(self) -> Range<u64> {
        match self {
            RunProfile::PaperExact => 0..3,
            RunProfile::Practical => 0..3,
            RunProfile::FastCi => 0..2,
        }
    }
}

impl std::fmt::Display for RunProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for p in RunProfile::ALL {
            assert_eq!(RunProfile::parse(p.name()), Some(p));
        }
        assert_eq!(RunProfile::parse("nope"), None);
    }

    #[test]
    fn fast_ci_budget_is_capped() {
        assert!(RunProfile::FastCi.budget().has_caps());
        assert!(!RunProfile::Practical.budget().has_caps());
        assert!(!RunProfile::PaperExact.budget().has_caps());
    }

    #[test]
    fn paper_exact_defaults_to_the_auto_backend() {
        assert_eq!(RunProfile::PaperExact.budget().backend, Backend::auto());
        for p in [RunProfile::Practical, RunProfile::FastCi] {
            assert_eq!(p.budget().backend, Backend::Sequential, "{p}");
        }
    }

    #[test]
    fn paper_exact_schedules_cheapest_first() {
        use crate::engine::schedule::ScheduleOrder;
        assert_eq!(
            RunProfile::PaperExact.schedule().order,
            ScheduleOrder::CheapestFirst
        );
        for p in [RunProfile::Practical, RunProfile::FastCi] {
            assert_eq!(p.schedule().order, ScheduleOrder::InOrder);
        }
        // No profile smuggles in a wall-clock cap: that is an explicit
        // opt-in.
        for p in RunProfile::ALL {
            assert!(p.schedule().wall_clock_cap.is_none());
        }
    }

    #[test]
    fn default_grids_are_usable() {
        for p in RunProfile::ALL {
            assert!(!p.default_sizes().is_empty());
            assert!(!p.default_seeds().is_empty());
        }
    }
}
