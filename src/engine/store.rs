//! The persisted result store, format v2: one JSONL file per store
//! directory, one line per completed work unit, **content-addressed per
//! unit**.
//!
//! The workspace deliberately has no external dependencies, so the
//! store hand-rolls both directions of its JSON: a writer for the flat
//! records it produces and a small parser that reads exactly that
//! shape back.
//!
//! Each record is keyed by a 128-bit FNV-1a hash of the unit's full
//! identity — `(family, n, seed, detector id, detector configuration
//! fingerprint, budget)` — deliberately *not* the sweep grid or the
//! metric. Keying units instead of sweeps is what makes overlapping
//! grids share work: extending a size ladder by one rung, adding a
//! seed, or adding a detector leaves every previously computed unit's
//! key unchanged, so a resumed run replays the overlap with zero
//! detector invocations and only executes the new cells. Records carry
//! the full unified cost, so re-analyzing under another metric is a
//! pure replay too.
//!
//! Layout (`<dir>/units-v2.jsonl`):
//!
//! ```text
//! {"kind":"unit-store","version":2}
//! {"key":"8c1f…32 hex…","det":"classical/C4/…","n":64,"seed":0,"status":"ok","rejected":true,"value":220,…}
//! {"key":"1d90…","det":…}
//! ```
//!
//! Format-v1 files (sweep-keyed `<slug>-<hash>.jsonl` with a
//! `"kind":"sweep-store"` header) may share the directory; they are
//! detected and ignored — never misread as unit records. A
//! `units-v2.jsonl` whose header fails to parse is moved aside to a
//! `.corrupt` sidecar (preserving the bytes for inspection) before a
//! fresh store is started.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The store's file name inside its directory (format v2).
pub const STORE_FILE: &str = "units-v2.jsonl";

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: Rust's shortest round-trip decimal
/// for finite values, `null` otherwise (JSON has no NaN/∞).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// 64-bit FNV-1a over a canonical configuration string (kept for
/// general-purpose hashing — deterministic temp names, legacy v1 file
/// keys).
pub fn config_hash(canonical: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 128-bit FNV-1a rendered as 32 hex characters — the content address
/// of one work unit. 128 bits make accidental collisions across a
/// store directory a non-concern; the engine additionally verifies
/// `det`/`n`/`seed` on replay.
pub fn unit_key(canonical: &str) -> String {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in canonical.as_bytes() {
        h ^= u128::from(*b);
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    format!("{h:032x}")
}

/// The canonical identity string of one work unit — every field that
/// changes what the unit computes, and nothing else. The metric is
/// deliberately absent (records carry the full unified cost); the
/// sweep grid is deliberately absent (that is the whole point of
/// per-unit addressing). Detector ids alone are not enough — two
/// tunings of the same algorithm share an id — so the configuration
/// fingerprint is folded in as well.
///
/// `family_key` is the family's **store key**
/// ([`GraphFamily::store_key`](crate::scenario::GraphFamily::store_key)):
/// the 128-bit spec fingerprint for catalog families (covering every
/// parameter) or `name@version` for custom builders. The canonical
/// prefix is `v3` for exactly this reason — records written by earlier
/// releases were keyed by the family's free-form *display name*, which
/// could not see parameter or builder changes; their keys can never
/// equal a v3 key, so legacy entries are ignored on resume rather than
/// misread.
pub fn canonical_unit(
    family_key: &str,
    n: usize,
    seed: u64,
    det_id: &str,
    det_config: &str,
    budget: &even_cycle::Budget,
) -> String {
    format!(
        "v3|family={family_key}|n={n}|seed={seed}|det={det_id}|config={det_config}|bandwidth={}|repetitions={:?}|run_to_budget={}|max_rounds={:?}|max_messages={:?}",
        budget.bandwidth,
        budget.repetitions,
        budget.run_to_budget,
        budget.max_rounds,
        budget.max_messages,
    )
}

/// The canonical identity string of one *stream checkpoint* work unit:
/// the schedule's 128-bit fingerprint (covering the base family with
/// parameters, the rate, the insert/delete mix, and the checkpoint
/// count), the checkpoint index, the instance coordinates, the detector
/// identity, and the budget. The `stream=` tag keeps these keys in a
/// namespace static sweep units (`family=`) can never produce, so a
/// store directory can hold both without collision. Any schedule
/// parameter change moves the fingerprint and with it every checkpoint
/// key — a re-run of an *unchanged* schedule replays every prefix with
/// zero detector invocations, while an edited one recomputes from
/// scratch rather than replaying stale verdicts.
pub fn canonical_stream_unit(
    schedule_key: &str,
    checkpoint: usize,
    n: usize,
    seed: u64,
    det_id: &str,
    det_config: &str,
    budget: &even_cycle::Budget,
) -> String {
    format!(
        "v3|stream={schedule_key}|checkpoint={checkpoint}|n={n}|seed={seed}|det={det_id}|config={det_config}|bandwidth={}|repetitions={:?}|run_to_budget={}|max_rounds={:?}|max_messages={:?}",
        budget.bandwidth,
        budget.repetitions,
        budget.run_to_budget,
        budget.max_rounds,
        budget.max_messages,
    )
}

/// One scalar field of a parsed flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Field {
    Str(String),
    /// Numbers keep their raw token so both `u64` and `f64` convert
    /// losslessly.
    Num(String),
    Bool(bool),
    Null,
}

impl Field {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Field::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Field::Num(raw) => raw.parse().ok(),
            Field::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Field::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Skips insignificant whitespace between tokens. The store's own
/// lines never contain any, but the [`serve`](crate::serve) protocol
/// accepts requests from arbitrary JSON emitters, which routinely put
/// spaces after `:` and `,`.
fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses one flat JSON object (string/number/bool/null values only —
/// the shape this store writes, and the shape the [`serve`](crate::serve)
/// protocol accepts). Returns `None` on any malformed line, which
/// callers treat as "not resumable" (or, for serve, a protocol error).
pub(crate) fn parse_flat(line: &str) -> Option<HashMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut map = HashMap::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(map);
            }
            ',' => {
                chars.next();
                skip_ws(&mut chars);
            }
            _ => {}
        }
        // Key.
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        // Value.
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                Field::Str(parse_string_body(&mut chars)?)
            }
            't' => {
                for expect in "true".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Bool(true)
            }
            'f' => {
                for expect in "false".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Bool(false)
            }
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Null
            }
            _ => {
                let mut raw = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' || c.is_ascii_whitespace() {
                        break;
                    }
                    raw.push(c);
                    chars.next();
                }
                if raw.is_empty() {
                    return None;
                }
                Field::Num(raw)
            }
        };
        map.insert(key, value);
    }
}

/// Parses the body of a JSON string whose opening quote was consumed.
fn parse_string_body(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// How a work unit ended.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitStatus {
    /// The detector returned a detection within budget.
    Ok,
    /// The run was aborted by a [`Budget`](even_cycle::Budget) cap.
    BudgetExceeded,
    /// The simulator failed (the message is the `SimError` rendering).
    Error(String),
}

/// One completed work unit: the content address (`key`), the
/// human-readable identity (`det`, `n`, `seed`), the extracted metric
/// `value`, and the full unified cost so stored sweeps can be
/// re-analyzed under other metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// The unit's 32-hex content address ([`unit_key`] of
    /// [`canonical_unit`]).
    pub key: String,
    /// The detector's registry id.
    pub det: String,
    /// Requested instance size.
    pub n: usize,
    /// Instance seed.
    pub seed: u64,
    /// How the run ended.
    pub status: UnitStatus,
    /// Vertices of the graph actually built (families snap sizes).
    pub node_count: u64,
    /// The metric value extracted at record time (informational —
    /// aggregation re-derives values from the cost fields, which is
    /// what lets one store serve every metric).
    pub value: f64,
    /// Whether the detector rejected (found a cycle).
    pub rejected: bool,
    /// Unified cost: rounds charged.
    pub rounds: u64,
    /// Unified cost: supersteps executed.
    pub supersteps: u64,
    /// Unified cost: total messages.
    pub messages: u64,
    /// Unified cost: total words.
    pub words: u64,
    /// Unified cost: peak per-edge words in a superstep.
    pub max_congestion: u64,
    /// Unified cost: outer-loop iterations.
    pub iterations: u64,
}

impl UnitRecord {
    /// The record's cost fields as a unified [`RunCost`] — what metric
    /// extraction runs on, for replayed and fresh units alike.
    pub fn cost(&self) -> even_cycle::RunCost {
        even_cycle::RunCost {
            rounds: self.rounds,
            supersteps: self.supersteps,
            messages: self.messages,
            words: self.words,
            max_congestion: self.max_congestion,
            iterations: self.iterations,
        }
    }

    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let status = match &self.status {
            UnitStatus::Ok => "ok",
            UnitStatus::BudgetExceeded => "budget-exceeded",
            UnitStatus::Error(_) => "error",
        };
        let mut line = format!(
            "{{\"key\":\"{}\",\"det\":\"{}\",\"n\":{},\"seed\":{},\"status\":\"{}\",\"rejected\":{},\"value\":{},\"node_count\":{},\"rounds\":{},\"supersteps\":{},\"messages\":{},\"words\":{},\"max_congestion\":{},\"iterations\":{}",
            json_escape(&self.key),
            json_escape(&self.det),
            self.n,
            self.seed,
            status,
            self.rejected,
            json_f64(self.value),
            self.node_count,
            self.rounds,
            self.supersteps,
            self.messages,
            self.words,
            self.max_congestion,
            self.iterations,
        );
        if let UnitStatus::Error(msg) = &self.status {
            line.push_str(&format!(",\"error\":\"{}\"", json_escape(msg)));
        }
        line.push('}');
        line
    }

    /// Parses a record line written by [`UnitRecord::to_line`].
    pub fn from_line(line: &str) -> Option<UnitRecord> {
        let map = parse_flat(line)?;
        let status = match map.get("status")?.as_str()? {
            "ok" => UnitStatus::Ok,
            "budget-exceeded" => UnitStatus::BudgetExceeded,
            "error" => UnitStatus::Error(
                map.get("error")
                    .and_then(Field::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            _ => return None,
        };
        Some(UnitRecord {
            key: map.get("key")?.as_str()?.to_string(),
            det: map.get("det")?.as_str()?.to_string(),
            n: map.get("n")?.as_u64()? as usize,
            seed: map.get("seed")?.as_u64()?,
            status,
            node_count: map.get("node_count")?.as_u64()?,
            value: map.get("value")?.as_f64()?,
            rejected: map.get("rejected")?.as_bool()?,
            rounds: map.get("rounds")?.as_u64()?,
            supersteps: map.get("supersteps")?.as_u64()?,
            messages: map.get("messages")?.as_u64()?,
            words: map.get("words")?.as_u64()?,
            max_congestion: map.get("max_congestion")?.as_u64()?,
            iterations: map.get("iterations")?.as_u64()?,
        })
    }
}

/// The on-disk per-unit store for one store directory.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    loaded: HashMap<String, UnitRecord>,
}

impl ResultStore {
    /// Opens (or creates) the store under `dir`, loading every
    /// resumable record.
    ///
    /// * A crash-truncated trailing line (no final newline) is sealed
    ///   on open so the partial record is skipped once and later
    ///   appends land on a fresh line instead of concatenating.
    /// * A `units-v2.jsonl` whose header is not a valid v2 header is
    ///   moved to a `.corrupt` sidecar (noted on stderr) instead of
    ///   being destroyed — the data may be hand-edited or otherwise
    ///   worth inspecting.
    /// * Legacy format-v1 sweep-keyed files in the same directory are
    ///   detected and ignored (noted on stderr), never misread.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);

        let legacy = legacy_v1_files(dir);
        if !legacy.is_empty() {
            eprintln!(
                "note: ignoring {} legacy sweep-keyed (v1) store file(s) in {} — \
                 the per-unit (v2) store does not read them",
                legacy.len(),
                dir.display(),
            );
        }

        let mut loaded = HashMap::new();
        let mut valid_header = false;
        if path.exists() {
            let content = std::fs::read_to_string(&path)?;
            if !content.is_empty() && !content.ends_with('\n') {
                // Killed mid-append: seal the partial line. It fails to
                // parse below (recomputed), and future appends start
                // clean.
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)?
                    .write_all(b"\n")?;
            }
            for (idx, line) in content.lines().enumerate() {
                if idx == 0 {
                    valid_header = parse_flat(line).is_some_and(|m| {
                        m.get("kind").and_then(Field::as_str) == Some("unit-store")
                            && m.get("version").and_then(Field::as_u64) == Some(2)
                    });
                    if !valid_header {
                        break;
                    }
                    continue;
                }
                if let Some(record) = UnitRecord::from_line(line) {
                    loaded.insert(record.key.clone(), record);
                }
            }
            // An empty file (a crash between create and the header
            // write) holds no data worth preserving — reinitialize it
            // in place. Anything else unreadable moves aside intact.
            if !valid_header && !content.is_empty() {
                let sidecar = corrupt_sidecar(&path);
                std::fs::rename(&path, &sidecar)?;
                eprintln!(
                    "warning: {} has an unreadable header; moved it to {} and started a fresh store",
                    path.display(),
                    sidecar.display(),
                );
            }
        }
        if !valid_header {
            loaded.clear();
            let mut file = std::fs::File::create(&path)?;
            writeln!(file, "{{\"kind\":\"unit-store\",\"version\":2}}")?;
        }
        Ok(ResultStore { path, loaded })
    }

    /// The records replayable from disk, keyed by content address.
    pub fn loaded(&self) -> &HashMap<String, UnitRecord> {
        &self.loaded
    }

    /// Looks up one record by its content address.
    pub fn get(&self, key: &str) -> Option<&UnitRecord> {
        self.loaded.get(key)
    }

    /// Number of replayable records.
    pub fn len(&self) -> usize {
        self.loaded.len()
    }

    /// Whether the store holds no replayable records.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty()
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends freshly computed records and makes them resumable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, records: &[UnitRecord]) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        for record in records {
            writeln!(file, "{}", record.to_line())?;
        }
        for record in records {
            self.loaded.insert(record.key.clone(), record.clone());
        }
        Ok(())
    }
}

/// The legacy (v1, sweep-keyed) store files present in `dir`: any other
/// `.jsonl` file whose first line is a `"kind":"sweep-store"` header.
fn legacy_v1_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl")
            || path.file_name().and_then(|f| f.to_str()) == Some(STORE_FILE)
        {
            continue;
        }
        // Only the first line decides; v1 files can be huge, so never
        // slurp the whole thing.
        let Ok(file) = std::fs::File::open(&path) else {
            continue;
        };
        let mut first_line = String::new();
        if std::io::BufRead::read_line(&mut std::io::BufReader::new(file), &mut first_line).is_err()
        {
            continue;
        }
        let is_v1 = parse_flat(&first_line)
            .is_some_and(|m| m.get("kind").and_then(Field::as_str) == Some("sweep-store"));
        if is_v1 {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// A free `.corrupt` sidecar name next to `path` (numbered when a
/// previous corruption already claimed the plain one).
fn corrupt_sidecar(path: &Path) -> PathBuf {
    let base = PathBuf::from(format!("{}.corrupt", path.display()));
    if !base.exists() {
        return base;
    }
    for i in 1.. {
        let numbered = PathBuf::from(format!("{}.corrupt-{i}", path.display()));
        if !numbered.exists() {
            return numbered;
        }
    }
    unreachable!("some sidecar index is free")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> UnitRecord {
        UnitRecord {
            key: key.to_string(),
            det: "classical/C4/color-bfs".to_string(),
            n: 64,
            seed: 3,
            status: UnitStatus::Ok,
            node_count: 64,
            value: 220.5,
            rejected: true,
            rounds: 220,
            supersteps: 40,
            messages: 1000,
            words: 1200,
            max_congestion: 9,
            iterations: 2,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ec-store-{tag}-{}-{:x}",
            std::process::id(),
            config_hash(tag)
        ))
    }

    #[test]
    fn record_roundtrips_through_its_line() {
        for status in [
            UnitStatus::Ok,
            UnitStatus::BudgetExceeded,
            UnitStatus::Error("step limit \"64\" exceeded".to_string()),
        ] {
            let mut r = sample("00aa");
            r.status = status;
            let parsed = UnitRecord::from_line(&r.to_line()).expect("roundtrip");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn parse_flat_tolerates_inter_token_whitespace() {
        // The serve protocol feeds this parser lines from arbitrary
        // JSON emitters, which put spaces after ':' and ',' (python's
        // json.dumps default, most pretty-printers).
        let spaced = "{ \"op\" : \"detect\", \"n\" : 24 ,\"deep\" :\ttrue , \"x\": null }";
        let map = parse_flat(spaced).expect("spaced object parses");
        assert_eq!(map.get("op").and_then(Field::as_str), Some("detect"));
        assert_eq!(map.get("n").and_then(Field::as_u64), Some(24));
        assert_eq!(map.get("deep").and_then(Field::as_bool), Some(true));
        assert!(matches!(map.get("x"), Some(Field::Null)));
        // Whitespace never glues two values together.
        assert!(parse_flat("{\"a\":1 2}").is_none());
    }

    #[test]
    fn f64_values_roundtrip_exactly() {
        let mut r = sample("00bb");
        r.value = 1.0 / 3.0;
        let parsed = UnitRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(parsed.value.to_bits(), r.value.to_bits());
    }

    #[test]
    fn legacy_name_keyed_canonicals_never_collide_with_v3() {
        // Pre-refactor stores keyed units by the family display name
        // under a v2 prefix; the v3 prefix + fingerprint key can never
        // reproduce such a key, so legacy records are dead weight, not
        // a misread hazard.
        let legacy = "v2|family=planted C4 on trees|n=64|seed=3|det=d|config=c|bandwidth=1|repetitions=None|run_to_budget=false|max_rounds=None|max_messages=None";
        let current = canonical_unit(
            "spec:0123456789abcdef0123456789abcdef",
            64,
            3,
            "d",
            "c",
            &even_cycle::Budget::classical(),
        );
        assert!(current.starts_with("v3|"));
        assert_ne!(unit_key(legacy), unit_key(&current));
    }

    #[test]
    fn unit_key_is_stable_and_sensitive() {
        let canonical = canonical_unit(
            "spec:planted4",
            64,
            3,
            "classical/C4/color-bfs",
            "Params { k: 2 }",
            &even_cycle::Budget::classical(),
        );
        let a = unit_key(&canonical);
        assert_eq!(a.len(), 32, "32 hex chars of 128-bit FNV-1a");
        assert_eq!(a, unit_key(&canonical));
        // Every identity component must move the key.
        let b = even_cycle::Budget::classical().with_bandwidth(2);
        for other in [
            canonical_unit(
                "spec:trees",
                64,
                3,
                "classical/C4/color-bfs",
                "Params { k: 2 }",
                &even_cycle::Budget::classical(),
            ),
            canonical_unit(
                "spec:planted4",
                65,
                3,
                "classical/C4/color-bfs",
                "Params { k: 2 }",
                &even_cycle::Budget::classical(),
            ),
            canonical_unit(
                "spec:planted4",
                64,
                4,
                "classical/C4/color-bfs",
                "Params { k: 2 }",
                &even_cycle::Budget::classical(),
            ),
            canonical_unit(
                "spec:planted4",
                64,
                3,
                "classical/C6/color-bfs",
                "Params { k: 2 }",
                &even_cycle::Budget::classical(),
            ),
            canonical_unit(
                "spec:planted4",
                64,
                3,
                "classical/C4/color-bfs",
                "Params { k: 3 }",
                &even_cycle::Budget::classical(),
            ),
            canonical_unit(
                "spec:planted4",
                64,
                3,
                "classical/C4/color-bfs",
                "Params { k: 2 }",
                &b,
            ),
        ] {
            assert_ne!(a, unit_key(&other));
        }
    }

    #[test]
    fn stream_unit_keys_are_sensitive_and_disjoint_from_sweep_keys() {
        let budget = even_cycle::Budget::classical();
        let a = unit_key(&canonical_stream_unit(
            "00ff00ff", 2, 64, 3, "d", "c", &budget,
        ));
        // Every identity component must move the key.
        for other in [
            canonical_stream_unit("11ff00ff", 2, 64, 3, "d", "c", &budget),
            canonical_stream_unit("00ff00ff", 3, 64, 3, "d", "c", &budget),
            canonical_stream_unit("00ff00ff", 2, 65, 3, "d", "c", &budget),
            canonical_stream_unit("00ff00ff", 2, 64, 4, "d", "c", &budget),
            canonical_stream_unit("00ff00ff", 2, 64, 3, "e", "c", &budget),
            canonical_stream_unit("00ff00ff", 2, 64, 3, "d", "x", &budget),
            canonical_stream_unit(
                "00ff00ff",
                2,
                64,
                3,
                "d",
                "c",
                &even_cycle::Budget::classical().with_bandwidth(2),
            ),
        ] {
            assert_ne!(a, unit_key(&other));
        }
        // The stream namespace can never collide with a static sweep
        // unit, whatever the family key looks like.
        let sweep = canonical_unit("spec:00ff00ff", 64, 3, "d", "c", &budget);
        assert!(sweep.starts_with("v3|family="));
        assert!(
            canonical_stream_unit("00ff00ff", 2, 64, 3, "d", "c", &budget)
                .starts_with("v3|stream=")
        );
        assert_ne!(a, unit_key(&sweep));
    }

    #[test]
    fn truncated_trailing_line_is_sealed_not_concatenated() {
        let dir = temp_dir("trunc");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();
        store.append(&[sample("aa00")]).unwrap();

        // Simulate a crash mid-append: a partial record with no newline.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(store.path())
                .unwrap();
            write!(f, "{{\"key\":\"bb11\",\"det\":\"classi").unwrap();
        }

        // Reopen: aa00 replays, the partial bb11 does not.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.get("aa00").is_some());

        // Appending the recomputed record must land on its own line.
        store.append(&[sample("bb11")]).unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("bb11"), Some(&sample("bb11")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_append_reopen_replays() {
        let dir = temp_dir("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.append(&[sample("aa00"), sample("bb11")]).unwrap();

        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("aa00"), Some(&sample("aa00")));
        // A key never stored must not replay.
        assert!(reopened.get("cc22").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_moves_to_sidecar() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(STORE_FILE);
        std::fs::write(&path, "this is not a store\n").unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty(), "corrupt data must not replay");
        let sidecar = dir.join(format!("{STORE_FILE}.corrupt"));
        assert_eq!(
            std::fs::read_to_string(&sidecar).unwrap(),
            "this is not a store\n",
            "the original bytes must be preserved, not destroyed"
        );

        // A second corruption gets a numbered sidecar.
        std::fs::write(&path, "still not a store\n").unwrap();
        let _ = ResultStore::open(&dir).unwrap();
        assert!(dir.join(format!("{STORE_FILE}.corrupt-1")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_is_reinitialized_not_quarantined() {
        // A crash between File::create and the header write leaves a
        // 0-byte file; it holds nothing worth preserving, so open must
        // rewrite it in place instead of minting .corrupt sidecars.
        let dir = temp_dir("empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_FILE), "").unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(!dir.join(format!("{STORE_FILE}.corrupt")).exists());
        assert!(std::fs::read_to_string(store.path())
            .unwrap()
            .starts_with("{\"kind\":\"unit-store\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_files_are_ignored_untouched() {
        let dir = temp_dir("legacy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("old-sweep-0123456789abcdef.jsonl");
        let v1_content = "{\"kind\":\"sweep-store\",\"config\":\"0123456789abcdef\",\"scenario\":\"old\",\"family\":\"trees\",\"metric\":\"rounds\",\"units\":4}\n{\"unit\":0,\"det\":\"x\",\"n\":24,\"seed\":0,\"status\":\"ok\",\"rejected\":false,\"value\":1,\"node_count\":24,\"rounds\":1,\"supersteps\":1,\"messages\":1,\"words\":1,\"max_congestion\":1,\"iterations\":1}\n";
        std::fs::write(&v1, v1_content).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(
            store.is_empty(),
            "v1 records must not be misread as v2 units"
        );
        assert_eq!(
            std::fs::read_to_string(&v1).unwrap(),
            v1_content,
            "v1 files are ignored, not rewritten"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
