//! The persisted result store: one JSONL file per sweep configuration,
//! one line per completed work unit.
//!
//! The workspace deliberately has no external dependencies, so the
//! store hand-rolls both directions of its JSON: a writer for the flat
//! records it produces and a small parser that reads exactly that
//! shape back. The file is keyed by a 64-bit FNV-1a hash of the sweep
//! configuration (family, sizes, seeds, budget, detector ids and
//! per-detector configuration fingerprints — deliberately *not* the
//! metric, since records carry the full unified cost and re-analyzing
//! under another metric is a pure replay), so a resumed run can trust
//! that every line it replays was produced by an identical
//! configuration — and cross-run comparisons can line files up by
//! hash.
//!
//! Layout (`<dir>/<slug>-<hash>.jsonl`):
//!
//! ```text
//! {"kind":"sweep-store","config":"9f37c1…","scenario":"…","family":"…","metric":"rounds","units":40}
//! {"unit":0,"det":"classical/C4/…","n":64,"seed":0,"status":"ok","rejected":true,"value":220,…}
//! {"unit":1,…}
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: Rust's shortest round-trip decimal
/// for finite values, `null` otherwise (JSON has no NaN/∞).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// 64-bit FNV-1a over a canonical configuration string.
pub fn config_hash(canonical: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One scalar field of a parsed flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    /// Numbers keep their raw token so both `u64` and `f64` convert
    /// losslessly.
    Num(String),
    Bool(bool),
    Null,
}

impl Field {
    fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Field::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Field::Num(raw) => raw.parse().ok(),
            Field::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Field::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string/number/bool/null values only —
/// the shape this store writes). Returns `None` on any malformed line,
/// which callers treat as "not resumable".
fn parse_flat(line: &str) -> Option<HashMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut map = HashMap::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(map);
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        // Key.
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        // Value.
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                Field::Str(parse_string_body(&mut chars)?)
            }
            't' => {
                for expect in "true".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Bool(true)
            }
            'f' => {
                for expect in "false".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Bool(false)
            }
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Null
            }
            _ => {
                let mut raw = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    raw.push(c);
                    chars.next();
                }
                if raw.is_empty() {
                    return None;
                }
                Field::Num(raw)
            }
        };
        map.insert(key, value);
    }
}

/// Parses the body of a JSON string whose opening quote was consumed.
fn parse_string_body(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// How a work unit ended.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitStatus {
    /// The detector returned a detection within budget.
    Ok,
    /// The run was aborted by a [`Budget`](even_cycle::Budget) cap.
    BudgetExceeded,
    /// The simulator failed (the message is the `SimError` rendering).
    Error(String),
}

/// One completed work unit: the key (`unit`, `det`, `n`, `seed`), the
/// extracted metric `value`, and the full unified cost so stored sweeps
/// can be re-analyzed under other metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Position in the sweep's canonical `(size, seed, detector)` order.
    pub unit: usize,
    /// The detector's registry id.
    pub det: String,
    /// Requested instance size.
    pub n: usize,
    /// Instance seed.
    pub seed: u64,
    /// How the run ended.
    pub status: UnitStatus,
    /// Vertices of the graph actually built (families snap sizes).
    pub node_count: u64,
    /// The metric value extracted at record time, under the metric in
    /// the file header (informational — aggregation re-derives values
    /// from the cost fields, which is what lets one store serve every
    /// metric).
    pub value: f64,
    /// Whether the detector rejected (found a cycle).
    pub rejected: bool,
    /// Unified cost: rounds charged.
    pub rounds: u64,
    /// Unified cost: supersteps executed.
    pub supersteps: u64,
    /// Unified cost: total messages.
    pub messages: u64,
    /// Unified cost: total words.
    pub words: u64,
    /// Unified cost: peak per-edge words in a superstep.
    pub max_congestion: u64,
    /// Unified cost: outer-loop iterations.
    pub iterations: u64,
}

impl UnitRecord {
    /// The record's cost fields as a unified [`RunCost`] — what metric
    /// extraction runs on, for replayed and fresh units alike.
    pub fn cost(&self) -> even_cycle::RunCost {
        even_cycle::RunCost {
            rounds: self.rounds,
            supersteps: self.supersteps,
            messages: self.messages,
            words: self.words,
            max_congestion: self.max_congestion,
            iterations: self.iterations,
        }
    }

    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let status = match &self.status {
            UnitStatus::Ok => "ok",
            UnitStatus::BudgetExceeded => "budget-exceeded",
            UnitStatus::Error(_) => "error",
        };
        let mut line = format!(
            "{{\"unit\":{},\"det\":\"{}\",\"n\":{},\"seed\":{},\"status\":\"{}\",\"rejected\":{},\"value\":{},\"node_count\":{},\"rounds\":{},\"supersteps\":{},\"messages\":{},\"words\":{},\"max_congestion\":{},\"iterations\":{}",
            self.unit,
            json_escape(&self.det),
            self.n,
            self.seed,
            status,
            self.rejected,
            json_f64(self.value),
            self.node_count,
            self.rounds,
            self.supersteps,
            self.messages,
            self.words,
            self.max_congestion,
            self.iterations,
        );
        if let UnitStatus::Error(msg) = &self.status {
            line.push_str(&format!(",\"error\":\"{}\"", json_escape(msg)));
        }
        line.push('}');
        line
    }

    /// Parses a record line written by [`UnitRecord::to_line`].
    pub fn from_line(line: &str) -> Option<UnitRecord> {
        let map = parse_flat(line)?;
        let status = match map.get("status")?.as_str()? {
            "ok" => UnitStatus::Ok,
            "budget-exceeded" => UnitStatus::BudgetExceeded,
            "error" => UnitStatus::Error(
                map.get("error")
                    .and_then(Field::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            _ => return None,
        };
        Some(UnitRecord {
            unit: map.get("unit")?.as_u64()? as usize,
            det: map.get("det")?.as_str()?.to_string(),
            n: map.get("n")?.as_u64()? as usize,
            seed: map.get("seed")?.as_u64()?,
            status,
            node_count: map.get("node_count")?.as_u64()?,
            value: map.get("value")?.as_f64()?,
            rejected: map.get("rejected")?.as_bool()?,
            rounds: map.get("rounds")?.as_u64()?,
            supersteps: map.get("supersteps")?.as_u64()?,
            messages: map.get("messages")?.as_u64()?,
            words: map.get("words")?.as_u64()?,
            max_congestion: map.get("max_congestion")?.as_u64()?,
            iterations: map.get("iterations")?.as_u64()?,
        })
    }
}

/// Header metadata written as the file's first line, for humans and
/// for the hash check on resume.
#[derive(Debug, Clone)]
pub struct StoreMeta {
    /// Scenario name.
    pub scenario: String,
    /// Family name.
    pub family: String,
    /// Metric label.
    pub metric: String,
    /// Total units of the full sweep.
    pub units: usize,
}

/// The on-disk store for one sweep configuration.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    loaded: HashMap<usize, UnitRecord>,
}

impl ResultStore {
    /// Opens (or creates) the store for the configuration hash under
    /// `dir`, loading every resumable record. A file whose header does
    /// not match `hash` is discarded and rewritten — the filename
    /// embeds the hash, so a mismatch means the file was corrupted or
    /// hand-edited. A crash-truncated trailing line (no final newline)
    /// is terminated on open so the partial record is skipped once and
    /// later appends land on a fresh line instead of concatenating.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn open(dir: &Path, hash: u64, meta: &StoreMeta) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let slug: String = meta
            .scenario
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        let path = dir.join(format!("{}-{:016x}.jsonl", slug.trim_matches('-'), hash));

        let mut loaded = HashMap::new();
        let mut valid_header = false;
        if path.exists() {
            let content = std::fs::read_to_string(&path)?;
            if !content.is_empty() && !content.ends_with('\n') {
                // Killed mid-append: seal the partial line. It fails to
                // parse below (recomputed), and future appends start
                // clean.
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)?
                    .write_all(b"\n")?;
            }
            for (idx, line) in content.lines().enumerate() {
                if idx == 0 {
                    valid_header = parse_flat(line)
                        .and_then(|m| m.get("config").and_then(Field::as_str).map(String::from))
                        .is_some_and(|h| h == format!("{hash:016x}"));
                    if !valid_header {
                        break;
                    }
                    continue;
                }
                if let Some(record) = UnitRecord::from_line(line) {
                    loaded.insert(record.unit, record);
                }
            }
        }
        if !valid_header {
            loaded.clear();
            let mut file = std::fs::File::create(&path)?;
            writeln!(
                file,
                "{{\"kind\":\"sweep-store\",\"config\":\"{:016x}\",\"scenario\":\"{}\",\"family\":\"{}\",\"metric\":\"{}\",\"units\":{}}}",
                hash,
                json_escape(&meta.scenario),
                json_escape(&meta.family),
                json_escape(&meta.metric),
                meta.units,
            )?;
        }
        Ok(ResultStore { path, loaded })
    }

    /// The records replayable from disk, keyed by unit index.
    pub fn loaded(&self) -> &HashMap<usize, UnitRecord> {
        &self.loaded
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends freshly computed records and makes them resumable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, records: &[UnitRecord]) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        for record in records {
            writeln!(file, "{}", record.to_line())?;
        }
        for record in records {
            self.loaded.insert(record.unit, record.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unit: usize) -> UnitRecord {
        UnitRecord {
            unit,
            det: "classical/C4/color-bfs".to_string(),
            n: 64,
            seed: 3,
            status: UnitStatus::Ok,
            node_count: 64,
            value: 220.5,
            rejected: true,
            rounds: 220,
            supersteps: 40,
            messages: 1000,
            words: 1200,
            max_congestion: 9,
            iterations: 2,
        }
    }

    #[test]
    fn record_roundtrips_through_its_line() {
        for status in [
            UnitStatus::Ok,
            UnitStatus::BudgetExceeded,
            UnitStatus::Error("step limit \"64\" exceeded".to_string()),
        ] {
            let mut r = sample(7);
            r.status = status;
            let parsed = UnitRecord::from_line(&r.to_line()).expect("roundtrip");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn f64_values_roundtrip_exactly() {
        let mut r = sample(0);
        r.value = 1.0 / 3.0;
        let parsed = UnitRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(parsed.value.to_bits(), r.value.to_bits());
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = config_hash("family|64,128|0,1,2|rounds");
        assert_eq!(a, config_hash("family|64,128|0,1,2|rounds"));
        assert_ne!(a, config_hash("family|64,128|0,1,2|words"));
    }

    #[test]
    fn truncated_trailing_line_is_sealed_not_concatenated() {
        let dir = std::env::temp_dir().join(format!(
            "ec-store-trunc-{}-{:x}",
            std::process::id(),
            config_hash("truncated_trailing_line")
        ));
        let meta = StoreMeta {
            scenario: "trunc".to_string(),
            family: "trees".to_string(),
            metric: "rounds".to_string(),
            units: 2,
        };
        let hash = 0x5eed_u64;
        let mut store = ResultStore::open(&dir, hash, &meta).unwrap();
        store.append(&[sample(0)]).unwrap();

        // Simulate a crash mid-append: a partial record with no newline.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(store.path())
                .unwrap();
            write!(f, "{{\"unit\":1,\"det\":\"classi").unwrap();
        }

        // Reopen: unit 0 replays, the partial unit 1 does not.
        let mut store = ResultStore::open(&dir, hash, &meta).unwrap();
        assert_eq!(store.loaded().len(), 1);
        assert!(store.loaded().contains_key(&0));

        // Appending the recomputed unit 1 must land on its own line.
        store.append(&[sample(1)]).unwrap();
        let reopened = ResultStore::open(&dir, hash, &meta).unwrap();
        assert_eq!(reopened.loaded().len(), 2);
        assert_eq!(reopened.loaded()[&1], sample(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_append_reopen_replays() {
        let dir = std::env::temp_dir().join(format!(
            "ec-store-test-{}-{:x}",
            std::process::id(),
            config_hash("open_append_reopen_replays")
        ));
        let meta = StoreMeta {
            scenario: "smoke".to_string(),
            family: "trees".to_string(),
            metric: "rounds".to_string(),
            units: 2,
        };
        let hash = 0xabcd_1234_u64;
        let mut store = ResultStore::open(&dir, hash, &meta).unwrap();
        assert!(store.loaded().is_empty());
        store.append(&[sample(0), sample(1)]).unwrap();

        let reopened = ResultStore::open(&dir, hash, &meta).unwrap();
        assert_eq!(reopened.loaded().len(), 2);
        assert_eq!(reopened.loaded()[&0], sample(0));

        // A different hash must not replay the old records.
        let fresh = ResultStore::open(&dir, hash + 1, &meta).unwrap();
        assert!(fresh.loaded().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
