//! The worker pool behind the experiment engine: index-addressed jobs
//! pulled from a shared atomic counter by scoped threads.
//!
//! The pool guarantees *positional* determinism, not scheduling
//! determinism: whichever worker ends up computing unit `i`, the result
//! lands in slot `i` of the returned vector. Combined with the
//! [`Detector`](even_cycle::Detector) contract (all randomness derives
//! from the seed), this is what makes a parallel sweep byte-identical
//! to a sequential one.
//!
//! This pool parallelizes *across* work units; the simulator has its
//! own persistent superstep pool (`congest_sim::pool`) parallelizing
//! *inside* one run. [`super::split_thread_budget`] keeps the product
//! of the two within the machine's parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use congest_telemetry as telemetry;

/// Pool telemetry: how much worker capacity a parallel pass used
/// (`busy_ns`) versus left on the table waiting for stragglers or an
/// empty queue (`idle_ns`). `idle / (busy + idle)` is the pool's idle
/// fraction.
struct PoolMetrics {
    busy_ns: Arc<telemetry::Counter>,
    idle_ns: Arc<telemetry::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        PoolMetrics {
            busy_ns: registry.counter("engine.pool.busy_ns"),
            idle_ns: registry.counter("engine.pool.idle_ns"),
        }
    })
}

/// Runs `count` jobs across `workers` threads and returns the results
/// in job-index order. `workers == 1` (or a single job) degenerates to
/// a plain sequential loop on the calling thread.
///
/// Jobs are pulled off a shared counter, so long and short units mix
/// freely across workers (no static sharding imbalance).
///
/// # Panics
///
/// Re-raises any panic from a job on the calling thread.
pub fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    if workers == 1 || count <= 1 {
        return (0..count).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let spawned = workers.min(count);
    let mut span = telemetry::Span::begin("engine.pool")
        .with("jobs", count)
        .with("workers", spawned);
    let started = Instant::now();
    let mut busy_total_ns = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spawned)
            .map(|_| {
                let next = &next;
                let job = &job;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut busy_ns = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let job_started = Instant::now();
                        let value = job(i);
                        busy_ns += job_started.elapsed().as_nanos() as u64;
                        mine.push((i, value));
                    }
                    (mine, busy_ns)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((mine, busy_ns)) => {
                    busy_total_ns += busy_ns;
                    for (i, value) in mine {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Idle capacity = worker-seconds held open minus worker-seconds
    // actually inside jobs (join skew on the collecting thread counts
    // as idle, which is what a saturation probe wants to see).
    let wall_ns = started.elapsed().as_nanos() as u64;
    let idle_ns = (wall_ns * spawned as u64).saturating_sub(busy_total_ns);
    pool_metrics().busy_ns.add(busy_total_ns);
    pool_metrics().idle_ns.add(idle_ns);
    span.push("busy_ns", busy_total_ns);
    span.push("idle_ns", idle_ns);
    drop(span);
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed exactly once"))
        .collect()
}

/// Parses an `EVEN_CYCLE_WORKERS` value: a positive integer, with a
/// diagnosable error for everything else (zero would deadlock, and a
/// typo like `"fuor"` must not silently serialize a sweep). This is
/// the same validation path the simulator's `EVEN_CYCLE_SIM_THREADS`
/// (and thus `ParallelExecutor::new`) goes through — one rule for
/// every thread-count knob in the stack.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    congest_sim::backend::parse_thread_count("EVEN_CYCLE_WORKERS", raw)
}

/// The worker-count override the environment asks for: `Ok(Some(w))`
/// when `EVEN_CYCLE_WORKERS` is a positive integer, `Ok(None)` when
/// unset, `Err` when set but unusable. Drivers that should fail fast
/// on a typo (the `sweep` binary) call this directly.
pub fn workers_env_override() -> Result<Option<usize>, String> {
    match std::env::var("EVEN_CYCLE_WORKERS") {
        Ok(raw) => parse_workers(&raw).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("EVEN_CYCLE_WORKERS is not valid unicode".to_string())
        }
    }
}

/// The worker count the environment asks for: `EVEN_CYCLE_WORKERS`
/// when set to a positive integer, else 1 (conservative — parallelism
/// is opt-in so that test and doctest behavior never depends on the
/// host's core count). An invalid value warns on stderr instead of
/// being silently coerced to 1.
pub fn workers_from_env() -> usize {
    match workers_env_override() {
        Ok(Some(w)) => w,
        Ok(None) => 1,
        Err(msg) => {
            eprintln!("warning: {msg}; defaulting to 1 worker");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1usize, 2, 3, 8] {
            let out = run_indexed(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_indexed(3, 0, |i| i);
    }

    #[test]
    fn worker_env_values_parse_or_diagnose() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 8 "), Ok(8));
        assert!(parse_workers("0").unwrap_err().contains("positive"));
        assert!(parse_workers("fuor").unwrap_err().contains("\"fuor\""));
        assert!(parse_workers("-2").is_err());
        assert!(parse_workers("").is_err());
    }
}
