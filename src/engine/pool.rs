//! The worker pool behind the experiment engine: index-addressed jobs
//! pulled from a shared atomic counter by scoped threads.
//!
//! The pool guarantees *positional* determinism, not scheduling
//! determinism: whichever worker ends up computing unit `i`, the result
//! lands in slot `i` of the returned vector. Combined with the
//! [`Detector`](even_cycle::Detector) contract (all randomness derives
//! from the seed), this is what makes a parallel sweep byte-identical
//! to a sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `count` jobs across `workers` threads and returns the results
/// in job-index order. `workers == 1` (or a single job) degenerates to
/// a plain sequential loop on the calling thread.
///
/// Jobs are pulled off a shared counter, so long and short units mix
/// freely across workers (no static sharding imbalance).
///
/// # Panics
///
/// Re-raises any panic from a job on the calling thread.
pub fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    if workers == 1 || count <= 1 {
        return (0..count).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(count))
            .map(|_| {
                let next = &next;
                let job = &job;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, job(i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mine) => {
                    for (i, value) in mine {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed exactly once"))
        .collect()
}

/// The worker count the environment asks for: `EVEN_CYCLE_WORKERS`
/// when set to a positive integer, else 1 (conservative — parallelism
/// is opt-in so that test and doctest behavior never depends on the
/// host's core count).
pub fn workers_from_env() -> usize {
    std::env::var("EVEN_CYCLE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1usize, 2, 3, 8] {
            let out = run_indexed(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_indexed(3, 0, |i| i);
    }
}
