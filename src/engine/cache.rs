//! The shared graph cache: one build per `(family, size, seed)`
//! instance, whatever the worker count, with refcount-based eviction.
//!
//! The sequential scenario runner built each `(size, seed)` graph once,
//! handed it to every detector, and dropped it before the next
//! instance. The parallel engine keeps both halves of that economy:
//!
//! * **Single-flight builds** — each key owns a build slot behind its
//!   own mutex, so two workers that miss simultaneously serialize on
//!   the slot and exactly one pays the construction cost. (The old
//!   "harmless race" double build was only harmless on small
//!   instances; on the largest graphs it doubled the most expensive
//!   step of the sweep.)
//! * **Refcounted eviction** — the engine pre-computes how many
//!   pending units reference each instance ([`GraphCache::expect_pending`])
//!   and releases one reference per finished (or skipped) unit
//!   ([`GraphCache::release`]); the last release drops the cache's
//!   `Arc<Graph>`, bounding peak memory by the working set instead of
//!   the whole grid. Keys fetched without a declared refcount (direct
//!   library use) are never auto-evicted, preserving the old behavior.
//!
//! Since the suite runner, keys carry the **family store key** as well
//! as `(n, seed)`: one cache serves every scenario of a suite — two
//! stanzas over the same family share each instance build, while equal
//! `(n, seed)` pairs from *different* families never collide.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use congest_graph::Graph;
use congest_telemetry as telemetry;

use crate::scenario::GraphFamily;

/// Cache telemetry, resolved once per process (the cache itself is
/// per-run; the counters aggregate across runs like every other
/// registry metric).
struct CacheMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        CacheMetrics {
            hits: registry.counter("engine.graph_cache.hits"),
            misses: registry.counter("engine.graph_cache.misses"),
            evictions: registry.counter("engine.graph_cache.evictions"),
        }
    })
}

/// The cache key of one instance: `(family store key, n, seed)`.
pub type InstanceKey = (String, usize, u64);

/// Refcount sentinel for keys with no declared pending count: cached
/// forever (never auto-evicted).
const UNTRACKED: usize = usize::MAX;

/// One cache entry: the build slot (shared with any worker currently
/// building or reading it) and the number of pending units still
/// holding a reference.
struct Entry {
    slot: Arc<Mutex<Option<Arc<Graph>>>>,
    remaining: usize,
}

impl Entry {
    fn untracked() -> Entry {
        Entry {
            slot: Arc::new(Mutex::new(None)),
            remaining: UNTRACKED,
        }
    }
}

/// A concurrent memo of `(family, n, seed) → Graph`, shared by every
/// scenario of a run (or a whole suite).
pub struct GraphCache {
    map: Mutex<HashMap<InstanceKey, Entry>>,
    builds: AtomicUsize,
}

impl Default for GraphCache {
    fn default() -> Self {
        GraphCache::new()
    }
}

impl GraphCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        GraphCache {
            map: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
        }
    }

    /// Declares how many pending units will [`release`](Self::release)
    /// each instance. Counts add to any previously declared balance,
    /// and only declared keys are ever evicted.
    /// The counts arrive as a `BTreeMap` so the declaration pass is
    /// deterministic end to end (auditor rule R1).
    pub fn expect_pending(&self, counts: &BTreeMap<InstanceKey, usize>) {
        let mut map = self.map.lock().unwrap();
        for (key, &count) in counts {
            if count == 0 {
                continue;
            }
            let entry = map.entry(key.clone()).or_insert_with(Entry::untracked);
            entry.remaining = if entry.remaining == UNTRACKED {
                count
            } else {
                entry.remaining + count
            };
        }
    }

    /// The instance of `family` at `(n, seed)`, building it on first
    /// request. Concurrent misses on the same key serialize on the
    /// key's build slot — exactly one build per instance, whatever the
    /// worker count.
    pub fn get(&self, family: &GraphFamily, n: usize, seed: u64) -> Arc<Graph> {
        let slot = {
            let mut map = self.map.lock().unwrap();
            let entry = map
                .entry((family.store_key(), n, seed))
                .or_insert_with(Entry::untracked);
            Arc::clone(&entry.slot)
        };
        // Build under the per-key slot lock, not the map lock: other
        // keys proceed in parallel, while a second miss on *this* key
        // blocks here until the graph exists instead of rebuilding it.
        let mut graph = slot.lock().unwrap();
        if graph.is_none() {
            cache_metrics().misses.inc();
            let mut span = telemetry::Span::begin("engine.graph_build")
                .with("n", n)
                .with("seed", seed);
            *graph = Some(Arc::new(family.build(n, seed)));
            span.push("family", family.store_key());
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            cache_metrics().hits.inc();
        }
        Arc::clone(graph.as_ref().expect("slot was just filled"))
    }

    /// Releases one pending-unit reference on the instance; the last
    /// release evicts it. A release on an untracked or
    /// already-evicted key is a no-op.
    pub fn release(&self, family_key: &str, n: usize, seed: u64) {
        let mut map = self.map.lock().unwrap();
        let key = (family_key.to_string(), n, seed);
        if let Some(entry) = map.get_mut(&key) {
            if entry.remaining != UNTRACKED {
                entry.remaining -= 1;
                if entry.remaining == 0 {
                    map.remove(&key);
                    cache_metrics().evictions.inc();
                }
            }
        }
    }

    /// Number of instances currently resident (built and not evicted).
    pub fn len(&self) -> usize {
        let map = self.map.lock().unwrap();
        // audit:allow(R1): order-free aggregation — counting resident
        // entries; no byte of output depends on visit order.
        map.values()
            .filter(|e| e.slot.lock().unwrap().is_some())
            .count()
    }

    /// Whether no instance is currently resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total graph constructions so far (never decremented by
    /// eviction) — the single-flight invariant makes this at most one
    /// per distinct key requested.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn caches_by_family_size_and_seed() {
        let trees = GraphFamily::random_trees();
        let cache = GraphCache::new();
        let a = cache.get(&trees, 32, 1);
        let b = cache.get(&trees, 32, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");
        let c = cache.get(&trees, 32, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        // A different family at the same (n, seed) is a different key.
        let planted = GraphFamily::planted_cycle(4);
        let d = cache.get(&planted, 32, 1);
        assert!(!Arc::ptr_eq(&a, &d), "families must not collide");
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn concurrent_misses_build_once() {
        let built = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let family = GraphFamily::custom("counting trees", "v1", move |n, seed| {
            counter.fetch_add(1, Ordering::SeqCst);
            // A slow-ish build widens the race window.
            std::thread::sleep(std::time::Duration::from_millis(20));
            congest_graph::generators::random_tree(n.max(2), seed)
        });
        let cache = GraphCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _ = cache.get(&family, 64, 7);
                });
            }
        });
        assert_eq!(
            built.load(Ordering::SeqCst),
            1,
            "simultaneous misses must single-flight the build"
        );
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn declared_refcounts_evict_on_last_release() {
        let trees = GraphFamily::random_trees();
        let key = trees.store_key();
        let cache = GraphCache::new();
        let mut counts = BTreeMap::new();
        counts.insert((key.clone(), 32, 1), 2);
        cache.expect_pending(&counts);

        let g = cache.get(&trees, 32, 1);
        assert_eq!(cache.len(), 1);
        cache.release(&key, 32, 1);
        assert_eq!(cache.len(), 1, "one pending unit left: stays resident");
        cache.release(&key, 32, 1);
        assert_eq!(cache.len(), 0, "last release evicts");
        // The caller's own Arc stays valid after eviction.
        assert!(g.node_count() >= 2);
        // Releasing an evicted key is a no-op.
        cache.release(&key, 32, 1);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn untracked_keys_are_never_evicted() {
        let trees = GraphFamily::random_trees();
        let cache = GraphCache::new();
        let _ = cache.get(&trees, 32, 5);
        cache.release(&trees.store_key(), 32, 5);
        assert_eq!(cache.len(), 1, "no declared refcount: cached forever");
    }

    #[test]
    fn release_without_get_never_underflows() {
        // A wall-clock-capped engine releases skipped units without
        // fetching their graph; the entry must evict cleanly unbuilt.
        let trees = GraphFamily::random_trees();
        let cache = GraphCache::new();
        let mut counts = BTreeMap::new();
        counts.insert((trees.store_key(), 48, 0), 1);
        cache.expect_pending(&counts);
        cache.release(&trees.store_key(), 48, 0);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.builds(), 0, "skipped units build nothing");
    }
}
