//! The shared graph cache: one build per `(size, seed)` instance,
//! whatever the worker count.
//!
//! The sequential scenario runner built each `(size, seed)` graph once
//! and handed it to every detector. The parallel engine keeps that
//! economy — work units for different detectors on the same instance
//! share one [`Graph`] through this cache instead of rebuilding it per
//! unit. Builders are deterministic in `(n, seed)`, so a racing double
//! build (two workers missing the cache simultaneously) is harmless:
//! both produce the identical graph and one wins the insert.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use congest_graph::Graph;

use crate::scenario::GraphFamily;

/// A concurrent memo of `(n, seed) → Graph` for one family.
pub struct GraphCache<'a> {
    family: &'a GraphFamily,
    map: Mutex<HashMap<(usize, u64), Arc<Graph>>>,
}

impl<'a> GraphCache<'a> {
    /// Creates an empty cache over `family`.
    pub fn new(family: &'a GraphFamily) -> Self {
        GraphCache {
            family,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The instance for `(n, seed)`, building it on first request.
    pub fn get(&self, n: usize, seed: u64) -> Arc<Graph> {
        if let Some(g) = self.map.lock().unwrap().get(&(n, seed)) {
            return Arc::clone(g);
        }
        // Build outside the lock: graph construction dominates, and
        // holding the mutex through it would serialize the pool.
        let built = Arc::new(self.family.build(n, seed));
        let mut map = self.map.lock().unwrap();
        Arc::clone(map.entry((n, seed)).or_insert(built))
    }

    /// Number of distinct instances built so far.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_by_size_and_seed() {
        let family = GraphFamily::random_trees();
        let cache = GraphCache::new(&family);
        let a = cache.get(32, 1);
        let b = cache.get(32, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");
        let c = cache.get(32, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }
}
