//! The parallel experiment engine: worker-pool sweep execution, run
//! profiles, budget enforcement, and a persisted result store.
//!
//! A [`Scenario`] declares *what* to measure; this module decides *how*
//! it runs. The sweep matrix `sizes × seeds × detectors` is flattened
//! into indexed work units, sharded across a [`pool`] of worker
//! threads, and re-assembled in unit order — so the aggregated
//! [`ScenarioReport`] is byte-identical whatever the worker count
//! (detectors are deterministic in the seed, f64 accumulation happens
//! in one canonical order on the collecting thread).
//!
//! With a store directory configured, every completed unit is appended
//! to a JSONL [`store`] keyed by a hash of the sweep configuration.
//! Re-running the same sweep replays the store and invokes no
//! detector; partially complete stores resume from where they left
//! off. [`profile::RunProfile`] names the three standard experiment
//! configurations (`paper-exact`, `practical`, `fast-ci`) that map
//! onto registry construction and budget defaults.
//!
//! ```
//! use even_cycle_congest::engine::Engine;
//! use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
//! use even_cycle_congest::cycle::{CycleDetector, Detector, Params};
//!
//! let scenario = Scenario::new("engine smoke", GraphFamily::random_trees())
//!     .sizes(&[24, 32])
//!     .seeds(0..2);
//! let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
//! let report = Engine::from_env()
//!     .with_workers(2)
//!     .run(&scenario, &[&det]);
//! assert_eq!(report.rows.len(), 1);
//! ```

pub mod cache;
pub mod pool;
pub mod profile;
pub mod store;

use std::path::PathBuf;

use even_cycle::theory::fit_exponent;
use even_cycle::Detector;

pub use profile::RunProfile;

use crate::scenario::{Scenario, ScenarioReport, ScenarioRow};
use cache::GraphCache;
use store::{ResultStore, StoreMeta, UnitRecord, UnitStatus};

/// The sweep executor. Construct with [`Engine::from_env`], then
/// layer overrides with the builder methods.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    store_dir: Option<PathBuf>,
}

impl Engine {
    /// An engine honoring the environment: worker count from
    /// `EVEN_CYCLE_WORKERS` (default 1), no store.
    pub fn from_env() -> Self {
        Engine {
            workers: pool::workers_from_env(),
            store_dir: None,
        }
    }

    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Persists and resumes work units under `dir` (see
    /// [`store::ResultStore`]).
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the scenario's full `sizes × seeds × detectors` matrix and
    /// aggregates it into a report.
    ///
    /// Work units already present in the result store are replayed
    /// without invoking their detector; everything else is executed on
    /// the worker pool and appended to the store.
    ///
    /// # Panics
    ///
    /// Panics if the result store cannot be opened or written (the
    /// engine treats a configured store as a hard requirement — a
    /// silently dropped store would turn the next resume into a silent
    /// full re-run).
    pub fn run(&self, scenario: &Scenario, detectors: &[&dyn Detector]) -> ScenarioReport {
        let ids: Vec<String> = detectors.iter().map(|d| d.descriptor().id()).collect();
        let units = scenario.sizes.len() * scenario.seeds.len() * detectors.len();

        let mut store = self.store_dir.as_ref().map(|dir| {
            let meta = StoreMeta {
                scenario: scenario.name.clone(),
                family: scenario.family.name().to_string(),
                metric: scenario.metric.label().to_string(),
                units,
            };
            let hash = store::config_hash(&canonical_config(scenario, detectors, &ids));
            ResultStore::open(dir, hash, &meta).expect("result store must be writable")
        });

        // Flatten the matrix in the canonical order (size-major, then
        // seed, then detector) and keep only the units the store cannot
        // replay.
        let mut todo: Vec<(usize, usize, usize, usize, u64)> = Vec::new(); // (unit, si, di, n, seed)
        let mut unit = 0usize;
        for (si, &n) in scenario.sizes.iter().enumerate() {
            for &seed in &scenario.seeds {
                for di in 0..detectors.len() {
                    let replayable = store
                        .as_ref()
                        .is_some_and(|s| s.loaded().contains_key(&unit));
                    if !replayable {
                        todo.push((unit, si, di, n, seed));
                    }
                    unit += 1;
                }
            }
        }

        // Workers append each record as it completes (serialized by the
        // mutex), so a killed sweep keeps everything finished so far
        // and the next run resumes from there.
        let graphs = GraphCache::new(&scenario.family);
        let shared_store = std::sync::Mutex::new(store.take());
        let fresh: Vec<UnitRecord> = pool::run_indexed(todo.len(), self.workers, |j| {
            let (unit, _si, di, n, seed) = todo[j];
            let record = execute_unit(scenario, &graphs, detectors[di], &ids[di], unit, n, seed);
            if let Some(store) = shared_store.lock().unwrap().as_mut() {
                store
                    .append(std::slice::from_ref(&record))
                    .expect("result store must accept appended records");
            }
            record
        });
        let store = shared_store.into_inner().unwrap();

        // Merge replayed and fresh records back into unit order, then
        // aggregate sequentially (one canonical f64 addition order).
        let mut records: Vec<Option<UnitRecord>> = (0..units).map(|_| None).collect();
        if let Some(store) = &store {
            for (idx, record) in store.loaded() {
                if *idx < units {
                    records[*idx] = Some(record.clone());
                }
            }
        }
        for record in fresh {
            let idx = record.unit;
            records[idx] = Some(record);
        }
        let records: Vec<UnitRecord> = records
            .into_iter()
            .map(|r| r.expect("every unit executed or replayed"))
            .collect();
        aggregate(scenario, detectors, &records)
    }
}

/// The canonical configuration string hashed into the store key: any
/// field that changes what a unit computes must appear here. The
/// metric is deliberately absent — records carry the full unified
/// cost, so re-analyzing a stored sweep under another metric is a
/// zero-invocation replay. Detector ids alone are not enough (two
/// tunings of the same algorithm share an id, and so do all registry
/// profiles), so each detector's configuration fingerprint is folded
/// in as well.
fn canonical_config(scenario: &Scenario, detectors: &[&dyn Detector], ids: &[String]) -> String {
    let b = &scenario.budget;
    let configs: Vec<String> = detectors.iter().map(|d| d.config_fingerprint()).collect();
    format!(
        "family={}|sizes={:?}|seeds={:?}|bandwidth={}|repetitions={:?}|run_to_budget={}|max_rounds={:?}|max_messages={:?}|dets={}|configs={}",
        scenario.family.name(),
        scenario.sizes,
        scenario.seeds,
        b.bandwidth,
        b.repetitions,
        b.run_to_budget,
        b.max_rounds,
        b.max_messages,
        ids.join(";"),
        configs.join(";"),
    )
}

/// Executes one work unit: build (or fetch) the instance, run the
/// detector, extract the metric.
fn execute_unit(
    scenario: &Scenario,
    graphs: &GraphCache<'_>,
    detector: &dyn Detector,
    id: &str,
    unit: usize,
    n: usize,
    seed: u64,
) -> UnitRecord {
    let g = graphs.get(n, seed);
    let mut record = UnitRecord {
        unit,
        det: id.to_string(),
        n,
        seed,
        status: UnitStatus::Ok,
        node_count: g.node_count() as u64,
        value: 0.0,
        rejected: false,
        rounds: 0,
        supersteps: 0,
        messages: 0,
        words: 0,
        max_congestion: 0,
        iterations: 0,
    };
    match detector.detect(&g, seed, &scenario.budget) {
        Ok(detection) => {
            record.status = if detection.budget_exceeded() {
                UnitStatus::BudgetExceeded
            } else {
                UnitStatus::Ok
            };
            record.rejected = detection.rejected();
            record.value = scenario.metric.extract(&detection);
            record.rounds = detection.cost.rounds;
            record.supersteps = detection.cost.supersteps;
            record.messages = detection.cost.messages;
            record.words = detection.cost.words;
            record.max_congestion = detection.cost.max_congestion;
            record.iterations = detection.cost.iterations;
        }
        Err(e) => record.status = UnitStatus::Error(e.to_string()),
    }
    record
}

/// Folds unit records (in canonical order) into the per-detector rows —
/// the same arithmetic, in the same order, as the original sequential
/// runner, so reports are byte-identical across worker counts and
/// resumes.
fn aggregate(
    scenario: &Scenario,
    detectors: &[&dyn Detector],
    records: &[UnitRecord],
) -> ScenarioReport {
    #[derive(Default)]
    struct Cell {
        total: f64,
        node_count: u64,
        ok: u64,
    }
    #[derive(Default)]
    struct Acc {
        cells: Vec<Cell>,
        rejections: u64,
        errors: u64,
        budget_exceeded: u64,
    }
    let mut accs: Vec<Acc> = detectors
        .iter()
        .map(|_| Acc {
            cells: scenario.sizes.iter().map(|_| Cell::default()).collect(),
            ..Default::default()
        })
        .collect();

    let dets = detectors.len();
    let per_size = scenario.seeds.len() * dets;
    for record in records {
        let si = record.unit / per_size;
        let di = record.unit % dets;
        let acc = &mut accs[di];
        match &record.status {
            UnitStatus::Ok => {
                if record.rejected {
                    acc.rejections += 1;
                }
                let cell = &mut acc.cells[si];
                cell.total += scenario.metric.extract_cost(&record.cost());
                // Families snap requested sizes (primes, parity); fit
                // against the graphs actually built, not the request.
                cell.node_count += record.node_count;
                cell.ok += 1;
            }
            // A certified rejection always keeps its Reject verdict
            // through a cap (status Ok), so this arm only sees runs
            // that were genuinely cut off undecided.
            UnitStatus::BudgetExceeded => acc.budget_exceeded += 1,
            UnitStatus::Error(_) => acc.errors += 1,
        }
    }

    let rows = detectors
        .iter()
        .zip(accs)
        .map(|(det, acc)| {
            let descriptor = det.descriptor();
            let samples: Vec<(usize, f64)> = acc
                .cells
                .iter()
                .filter(|c| c.ok > 0)
                .map(|c| ((c.node_count / c.ok) as usize, c.total / c.ok as f64))
                .collect();
            let (fitted_exponent, fitted_constant) = if samples.len() >= 2
                && samples.iter().all(|&(_, v)| v > 0.0)
            {
                let pairs: Vec<(f64, f64)> = samples.iter().map(|&(n, v)| (n as f64, v)).collect();
                fit_exponent(&pairs)
            } else {
                (f64::NAN, f64::NAN)
            };
            ScenarioRow {
                id: descriptor.id(),
                descriptor,
                samples,
                fitted_exponent,
                fitted_constant,
                rejections: acc.rejections,
                errors: acc.errors,
                budget_exceeded: acc.budget_exceeded,
            }
        })
        .collect();
    ScenarioReport {
        scenario: scenario.name.clone(),
        family: scenario.family.name().to_string(),
        metric: scenario.metric,
        bandwidth: scenario.budget.bandwidth,
        runs_per_size: scenario.seeds.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GraphFamily, Metric};
    use even_cycle::{CycleDetector, Params};

    #[test]
    fn worker_counts_agree() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let scenario = Scenario::new("pool smoke", GraphFamily::planted_cycle(4))
            .sizes(&[24, 32])
            .seeds(0..2)
            .metric(Metric::Rounds);
        let dets: Vec<&dyn Detector> = vec![&det];
        let seq = Engine::from_env().with_workers(1).run(&scenario, &dets);
        let par = Engine::from_env().with_workers(4).run(&scenario, &dets);
        assert_eq!(seq.to_json(), par.to_json());
    }
}
