//! The parallel experiment engine: worker-pool sweep execution, run
//! profiles, budget enforcement, and a persisted result store.
//!
//! A [`Scenario`] declares *what* to measure; this module decides *how*
//! it runs. The sweep matrix `sizes × seeds × detectors` is flattened
//! into indexed work units, sharded across a [`pool`] of worker
//! threads, and re-assembled in unit order — so the aggregated
//! [`ScenarioReport`] is byte-identical whatever the worker count
//! (detectors are deterministic in the seed, f64 accumulation happens
//! in one canonical order on the collecting thread).
//!
//! With a store directory configured, every completed unit is appended
//! to a JSONL [`store`] **content-addressed per unit** — keyed by a
//! hash of `(family, n, seed, detector fingerprint, budget)`, not of
//! the sweep grid. Re-running the same sweep replays the store and
//! invokes no detector; partially complete stores resume from where
//! they left off; and a grid extended by a size rung, a seed, or a
//! detector replays every overlapping unit and executes only the new
//! cells. A [`schedule::Schedule`] decides dispatch order
//! (cheapest-estimated-first for progressive refinement) and an
//! optional wall-clock cap under which undispatched units are skipped,
//! counted in the report, and resumed next run.
//! [`profile::RunProfile`] names the three standard experiment
//! configurations (`paper-exact`, `practical`, `fast-ci`) that map
//! onto registry construction, budget, and schedule defaults.
//!
//! ```
//! use even_cycle_congest::engine::Engine;
//! use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
//! use even_cycle_congest::cycle::{CycleDetector, Detector, Params};
//!
//! let scenario = Scenario::new("engine smoke", GraphFamily::random_trees())
//!     .sizes(&[24, 32])
//!     .seeds(0..2);
//! let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
//! let report = Engine::from_env()
//!     .with_workers(2)
//!     .run(&scenario, &[&det]);
//! assert_eq!(report.rows.len(), 1);
//! ```

pub mod cache;
pub mod pool;
pub mod profile;
pub mod schedule;
pub mod store;

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use congest_telemetry as telemetry;
use even_cycle::theory::fit_exponent;
use even_cycle::Detector;

pub use profile::RunProfile;
pub use schedule::{Schedule, ScheduleOrder};

use crate::scenario::{Metric, Scenario, ScenarioReport, ScenarioRow};
use crate::stream::{CheckpointCell, StreamReport, StreamRow, StreamScenario};
use cache::GraphCache;
use store::{ResultStore, UnitRecord, UnitStatus};

/// Telemetry handles for the engine's work accounting, resolved once
/// per process. These are always-on relaxed atomics; the per-unit
/// [`telemetry::Span`]s in [`record_detection`] are additionally gated
/// on an installed recorder.
struct EngineMetrics {
    units_executed: Arc<telemetry::Counter>,
    units_replayed: Arc<telemetry::Counter>,
    deadline_skips: Arc<telemetry::Counter>,
    unit_ns: Arc<telemetry::Histogram>,
    stream_replays: Arc<telemetry::Counter>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        EngineMetrics {
            units_executed: registry.counter("engine.units.executed"),
            units_replayed: registry.counter("engine.units.replayed"),
            deadline_skips: registry.counter("engine.schedule.deadline_skips"),
            unit_ns: registry.histogram("engine.unit_ns"),
            stream_replays: registry.counter("engine.stream.replays"),
        }
    })
}

/// Renders the canonical work summary the `sweep` bin prints to stderr:
/// `executed E, replayed R, skipped S of T unit(s) in X.Ys`.
pub fn work_summary(
    executed: usize,
    replayed: usize,
    skipped: u64,
    total: usize,
    elapsed: Duration,
) -> String {
    format!(
        "executed {executed}, replayed {replayed}, skipped {skipped} of {total} unit(s) in {:.1}s",
        elapsed.as_secs_f64()
    )
}

/// The sweep executor. Construct with [`Engine::from_env`], then
/// layer overrides with the builder methods.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    store_dir: Option<PathBuf>,
    schedule: Schedule,
}

impl Engine {
    /// An engine honoring the environment: worker count from
    /// `EVEN_CYCLE_WORKERS` (default 1), no store, in-order uncapped
    /// schedule.
    pub fn from_env() -> Self {
        Engine {
            workers: pool::workers_from_env(),
            store_dir: None,
            schedule: Schedule::default(),
        }
    }

    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Persists and resumes work units under `dir` (see
    /// [`store::ResultStore`]).
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Overrides the scheduling policy (dispatch order and optional
    /// wall-clock cap; see [`Schedule`]).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured scheduling policy.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Runs the scenario's full `sizes × seeds × detectors` matrix and
    /// aggregates it into a report.
    ///
    /// Work units whose content address is already in the result store
    /// are replayed without invoking their detector — including units
    /// computed by *previous, smaller grids* (extending a size ladder,
    /// a seed range, or the detector set only executes the new cells).
    /// Everything else is executed on the worker pool in schedule
    /// order and appended to the store as it completes; units not
    /// dispatched before the wall-clock cap are counted as skipped and
    /// resumed on the next run.
    ///
    /// # Panics
    ///
    /// Panics if the result store cannot be opened or written (the
    /// engine treats a configured store as a hard requirement — a
    /// silently dropped store would turn the next resume into a silent
    /// full re-run).
    pub fn run(&self, scenario: &Scenario, detectors: &[&dyn Detector]) -> ScenarioReport {
        self.run_suite(&[(scenario, detectors)])
            .reports
            .pop()
            .expect("one scenario in, one report out")
    }

    /// Runs a whole *suite* — any number of scenarios, each with its
    /// own detector set — through ONE shared worker pool, graph cache,
    /// result store, schedule, and thread budget.
    ///
    /// The work units of every scenario are flattened into a single
    /// dispatch queue (deduplicated by content address, so two stanzas
    /// that share a cell execute it once), scheduled together
    /// (cheapest-first ordering and the wall-clock cap apply across
    /// the whole suite), and aggregated back into one report per
    /// scenario in input order. Reports are byte-identical to running
    /// each scenario alone with the same store.
    ///
    /// # Panics
    ///
    /// Panics as [`Engine::run`] does if the result store cannot be
    /// opened or written.
    pub fn run_suite(&self, items: &[(&Scenario, &[&dyn Detector])]) -> SuiteOutcome {
        // Split the machine's thread budget between pool workers and
        // the intra-run simulation threads of each scenario's backend,
        // so a parallel sweep of parallel simulations never
        // oversubscribes (workers × sim_threads ≤ available
        // parallelism). The suite shares one pool, so the worker count
        // is the tightest scenario's split. Backends do not change
        // results — transcripts are byte-identical — so no clamp can
        // move a report.
        let available = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let mut workers = self.workers.max(1);
        let mut budgets: Vec<even_cycle::Budget> = Vec::with_capacity(items.len());
        for (scenario, _) in items {
            let max_size = scenario.sizes.iter().copied().max().unwrap_or(0);
            let (w, backend) =
                split_thread_budget(self.workers, scenario.budget.backend, max_size, available);
            workers = workers.min(w);
            budgets.push(scenario.budget.clone().with_backend(backend));
        }

        let mut store = self
            .store_dir
            .as_ref()
            .map(|dir| ResultStore::open(dir).expect("result store must be writable"));

        // Flatten every scenario's matrix in the canonical order
        // (scenario-major, then size, seed, detector), content-address
        // every unit, and keep only the units the store cannot replay —
        // deduplicated suite-wide, so a cell shared by two stanzas
        // executes once. The det/n/seed check on replay is a
        // belt-and-suspenders guard against a 128-bit key collision.
        struct Todo {
            si: usize,
            order: usize,
            di: usize,
            n: usize,
            seed: u64,
            key: String,
            estimate: f64,
        }
        let mut metas: Vec<ScenarioMeta> = Vec::with_capacity(items.len());
        let family_keys: Vec<String> = items.iter().map(|(s, _)| s.family.store_key()).collect();
        let mut todo: Vec<Todo> = Vec::new();
        let mut claimed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut total_units = 0usize;
        for (si, (scenario, detectors)) in items.iter().enumerate() {
            let ids: Vec<String> = detectors.iter().map(|d| d.descriptor().id()).collect();
            let configs: Vec<String> = detectors.iter().map(|d| d.config_fingerprint()).collect();
            let exponents: Vec<f64> = detectors.iter().map(|d| d.descriptor().exponent).collect();
            let units = scenario.sizes.len() * scenario.seeds.len() * detectors.len();
            let mut keys: Vec<String> = Vec::with_capacity(units);
            for &n in &scenario.sizes {
                for &seed in &scenario.seeds {
                    for di in 0..detectors.len() {
                        let key = store::unit_key(&store::canonical_unit(
                            &family_keys[si],
                            n,
                            seed,
                            &ids[di],
                            &configs[di],
                            &scenario.budget,
                        ));
                        let replayable = store
                            .as_ref()
                            .and_then(|s| s.get(&key))
                            .is_some_and(|r| r.det == ids[di] && r.n == n && r.seed == seed);
                        if !replayable && claimed.insert(key.clone()) {
                            todo.push(Todo {
                                si,
                                order: total_units + keys.len(),
                                di,
                                n,
                                seed,
                                key: key.clone(),
                                estimate: schedule::estimate_cost(n, exponents[di]),
                            });
                        }
                        keys.push(key);
                    }
                }
            }
            total_units += units;
            metas.push(ScenarioMeta { ids, keys });
        }

        // Dispatch order per the schedule, across the whole suite.
        // Aggregation folds records in canonical unit order regardless,
        // so reports do not depend on this — only *which* units finish
        // under a cap does.
        if self.schedule.order == ScheduleOrder::CheapestFirst {
            todo.sort_by(|a, b| {
                a.estimate
                    .total_cmp(&b.estimate)
                    .then(a.order.cmp(&b.order))
            });
        }

        // Pre-compute per-instance refcounts so the shared graph cache
        // can evict each (family, n, seed) when its last pending unit
        // completes.
        let mut pending: BTreeMap<cache::InstanceKey, usize> = BTreeMap::new();
        for t in &todo {
            *pending
                .entry((family_keys[t.si].clone(), t.n, t.seed))
                .or_insert(0) += 1;
        }
        let graphs = GraphCache::new();
        graphs.expect_pending(&pending);

        // Workers append each record as it completes (serialized by the
        // mutex), so a killed or wall-clock-capped sweep keeps
        // everything finished so far and the next run resumes from
        // there.
        // audit:allow(R2): schedule-cap enforcement — the deadline decides
        // *whether* a unit runs (skipped units resume later), never what any
        // executed unit computes.
        let deadline = self.schedule.wall_clock_cap.map(|cap| Instant::now() + cap);
        let shared_store = std::sync::Mutex::new(store.take());
        let fresh: Vec<Option<UnitRecord>> = pool::run_indexed(todo.len(), workers, |j| {
            let t = &todo[j];
            let (scenario, detectors) = items[t.si];
            // audit:allow(R2): same cap probe as above — gating only.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                // Cap elapsed: skip (do not start) this unit, but still
                // release its graph reference so eviction stays exact.
                engine_metrics().deadline_skips.inc();
                graphs.release(&family_keys[t.si], t.n, t.seed);
                return None;
            }
            let record = execute_unit(
                scenario,
                &budgets[t.si],
                &graphs,
                detectors[t.di],
                &metas[t.si].ids[t.di],
                &t.key,
                t.n,
                t.seed,
            );
            graphs.release(&family_keys[t.si], t.n, t.seed);
            if let Some(store) = shared_store.lock().unwrap().as_mut() {
                store
                    .append(std::slice::from_ref(&record))
                    .expect("result store must accept appended records");
            }
            Some(record)
        });
        let store = shared_store.into_inner().unwrap();
        let executed = fresh.iter().flatten().count();

        // Merge replayed and fresh records back into each scenario's
        // canonical unit order, then aggregate sequentially (one
        // canonical f64 addition order per scenario). Units skipped by
        // the wall-clock cap stay `None` and are counted per row.
        let mut by_key: HashMap<&str, &UnitRecord> = HashMap::new();
        for record in fresh.iter().flatten() {
            by_key.insert(&record.key, record);
        }
        let mut reports = Vec::with_capacity(items.len());
        for (si, (scenario, detectors)) in items.iter().enumerate() {
            let records: Vec<Option<UnitRecord>> = metas[si]
                .keys
                .iter()
                .map(|key| {
                    by_key
                        .get(key.as_str())
                        .map(|r| (*r).clone())
                        .or_else(|| store.as_ref().and_then(|s| s.get(key)).cloned())
                })
                .collect();
            reports.push(aggregate(scenario, detectors, &records));
        }
        let skipped: u64 = reports
            .iter()
            .map(|r: &ScenarioReport| r.skipped_units())
            .sum();
        let replayed_units = total_units - executed - skipped as usize;
        engine_metrics().units_replayed.add(replayed_units as u64);
        SuiteOutcome {
            reports,
            total_units,
            executed_units: executed,
            replayed_units,
        }
    }

    /// Replays one [`StreamScenario`] and runs every detector at every
    /// checkpoint; see [`Engine::run_streams`] for the execution and
    /// replay semantics.
    pub fn run_stream(
        &self,
        scenario: &StreamScenario,
        detectors: &[&dyn Detector],
    ) -> StreamOutcome {
        let suite = self.run_streams(&[(scenario, detectors)]);
        StreamOutcome {
            report: suite
                .reports
                .into_iter()
                .next()
                .expect("one stream in, one report out"),
            total_units: suite.total_units,
            executed_units: suite.executed_units,
            replayed_units: suite.replayed_units,
        }
    }

    /// Runs any number of [`StreamScenario`]s through one shared worker
    /// pool, result store, schedule, and thread budget.
    ///
    /// Every checkpoint verdict is one work unit, content-addressed by
    /// `(schedule fingerprint, checkpoint index, n, seed, detector,
    /// budget)` via [`store::canonical_stream_unit`]. Units already in
    /// the store are resolved **without replaying the stream at all**:
    /// a seed whose checkpoints are all stored never regenerates its
    /// base graph or update sequence, so a re-run of an unchanged
    /// stream costs zero detector invocations *and* zero graph builds.
    /// For seeds with missing units, the schedule is replayed once (on
    /// the calling thread — replay is inherently sequential) and only
    /// the snapshots that missing units need are materialized; the
    /// detector runs are then dispatched across the pool like any
    /// sweep, deduplicated suite-wide by content address, appended to
    /// the store as they complete, and aggregated back in canonical
    /// order (checkpoint-major, then seed, then detector) so reports
    /// are byte-identical whatever the worker count.
    ///
    /// # Panics
    ///
    /// Panics as [`Engine::run`] does if the result store cannot be
    /// opened or written.
    pub fn run_streams(&self, items: &[(&StreamScenario, &[&dyn Detector])]) -> StreamSuiteOutcome {
        let available = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let mut workers = self.workers.max(1);
        let mut budgets: Vec<even_cycle::Budget> = Vec::with_capacity(items.len());
        for (scenario, _) in items {
            let (w, backend) =
                split_thread_budget(self.workers, scenario.budget.backend, scenario.n, available);
            workers = workers.min(w);
            budgets.push(scenario.budget.clone().with_backend(backend));
        }

        let mut store = self
            .store_dir
            .as_ref()
            .map(|dir| ResultStore::open(dir).expect("result store must be writable"));

        // Flatten every stream's matrix in canonical order
        // (checkpoint-major, then seed, then detector), content-address
        // every unit, and keep only what the store cannot replay —
        // deduplicated suite-wide. The det/n/seed check on replay is
        // the same key-collision guard the static path uses.
        struct Todo {
            si: usize,
            order: usize,
            di: usize,
            ci: usize,
            qi: usize,
            key: String,
            estimate: f64,
        }
        let mut metas: Vec<ScenarioMeta> = Vec::with_capacity(items.len());
        let mut todo: Vec<Todo> = Vec::new();
        let mut claimed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut total_units = 0usize;
        for (si, (scenario, detectors)) in items.iter().enumerate() {
            let ids: Vec<String> = detectors.iter().map(|d| d.descriptor().id()).collect();
            let configs: Vec<String> = detectors.iter().map(|d| d.config_fingerprint()).collect();
            let exponents: Vec<f64> = detectors.iter().map(|d| d.descriptor().exponent).collect();
            let schedule_key = scenario.updates.fingerprint_hex();
            let checkpoints = scenario.updates.checkpoints;
            let mut keys: Vec<String> =
                Vec::with_capacity(checkpoints * scenario.seeds.len() * detectors.len());
            for ci in 0..checkpoints {
                for (qi, &seed) in scenario.seeds.iter().enumerate() {
                    for di in 0..detectors.len() {
                        let key = store::unit_key(&store::canonical_stream_unit(
                            &schedule_key,
                            ci,
                            scenario.n,
                            seed,
                            &ids[di],
                            &configs[di],
                            &scenario.budget,
                        ));
                        let replayable =
                            store.as_ref().and_then(|s| s.get(&key)).is_some_and(|r| {
                                r.det == ids[di] && r.n == scenario.n && r.seed == seed
                            });
                        if !replayable && claimed.insert(key.clone()) {
                            todo.push(Todo {
                                si,
                                order: total_units + keys.len(),
                                di,
                                ci,
                                qi,
                                key: key.clone(),
                                estimate: schedule::estimate_cost(scenario.n, exponents[di]),
                            });
                        }
                        keys.push(key);
                    }
                }
            }
            total_units += keys.len();
            metas.push(ScenarioMeta { ids, keys });
        }

        // Materialize only the snapshots that missing units need: one
        // sequential replay per (stream, seed) with any pending work,
        // stopped at its last needed checkpoint. Fully stored seeds are
        // never replayed.
        let mut needed: std::collections::BTreeMap<
            (usize, usize),
            std::collections::BTreeSet<usize>,
        > = std::collections::BTreeMap::new();
        for t in &todo {
            needed.entry((t.si, t.qi)).or_default().insert(t.ci);
        }
        let mut snapshots: HashMap<(usize, usize, usize), std::sync::Arc<congest_graph::Graph>> =
            HashMap::new();
        for ((si, qi), checkpoints) in &needed {
            let scenario = items[*si].0;
            let last = *checkpoints.iter().next_back().expect("non-empty set");
            engine_metrics().stream_replays.inc();
            let _replay_span = telemetry::Span::begin("engine.stream.replay")
                .with("n", scenario.n)
                .with("seed", scenario.seeds[*qi])
                .with("checkpoints", checkpoints.len());
            let mut replay = scenario.updates.replay(scenario.n, scenario.seeds[*qi]);
            while let Some((ci, snapshot)) = replay.next_checkpoint() {
                if checkpoints.contains(&ci) {
                    snapshots.insert((*si, *qi, ci), std::sync::Arc::new(snapshot));
                }
                if ci == last {
                    break;
                }
            }
        }

        if self.schedule.order == ScheduleOrder::CheapestFirst {
            todo.sort_by(|a, b| {
                a.estimate
                    .total_cmp(&b.estimate)
                    .then(a.order.cmp(&b.order))
            });
        }

        // audit:allow(R2): schedule-cap enforcement — the deadline decides
        // *whether* a unit runs (skipped units resume later), never what any
        // executed unit computes.
        let deadline = self.schedule.wall_clock_cap.map(|cap| Instant::now() + cap);
        let shared_store = std::sync::Mutex::new(store.take());
        let fresh: Vec<Option<UnitRecord>> = pool::run_indexed(todo.len(), workers, |j| {
            let t = &todo[j];
            let (scenario, detectors) = items[t.si];
            // audit:allow(R2): same cap probe as above — gating only.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                engine_metrics().deadline_skips.inc();
                return None;
            }
            let g = &snapshots[&(t.si, t.qi, t.ci)];
            let record = record_detection(
                scenario.metric,
                g,
                &budgets[t.si],
                detectors[t.di],
                &metas[t.si].ids[t.di],
                &t.key,
                scenario.n,
                scenario.seeds[t.qi],
            );
            if let Some(store) = shared_store.lock().unwrap().as_mut() {
                store
                    .append(std::slice::from_ref(&record))
                    .expect("result store must accept appended records");
            }
            Some(record)
        });
        let store = shared_store.into_inner().unwrap();
        let executed = fresh.iter().flatten().count();

        let mut by_key: HashMap<&str, &UnitRecord> = HashMap::new();
        for record in fresh.iter().flatten() {
            by_key.insert(&record.key, record);
        }
        let mut reports = Vec::with_capacity(items.len());
        for (si, (scenario, detectors)) in items.iter().enumerate() {
            let records: Vec<Option<UnitRecord>> = metas[si]
                .keys
                .iter()
                .map(|key| {
                    by_key
                        .get(key.as_str())
                        .map(|r| (*r).clone())
                        .or_else(|| store.as_ref().and_then(|s| s.get(key)).cloned())
                })
                .collect();
            reports.push(aggregate_stream(scenario, detectors, &records));
        }
        let skipped: u64 = reports.iter().map(StreamReport::skipped_units).sum();
        let replayed_units = total_units - executed - skipped as usize;
        engine_metrics().units_replayed.add(replayed_units as u64);
        StreamSuiteOutcome {
            reports,
            total_units,
            executed_units: executed,
            replayed_units,
        }
    }
}

/// Per-scenario bookkeeping the suite runner threads through the
/// shared pool pass.
struct ScenarioMeta {
    ids: Vec<String>,
    keys: Vec<String>,
}

/// What a suite run did: the per-scenario reports plus the shared
/// engine's work accounting — the replay guarantee made visible (a
/// second run of an unchanged suite must show `executed_units == 0`).
#[derive(Debug)]
pub struct SuiteOutcome {
    /// One report per input scenario, in input order.
    pub reports: Vec<ScenarioReport>,
    /// Total work units across all scenarios (duplicates counted per
    /// scenario).
    pub total_units: usize,
    /// Units that actually invoked a detector in this run.
    pub executed_units: usize,
    /// Units served without a detector invocation — from the result
    /// store, or from a sibling stanza that already computed the same
    /// content address this run.
    pub replayed_units: usize,
}

impl SuiteOutcome {
    /// Units skipped by the schedule's wall-clock cap, across all
    /// reports.
    pub fn skipped_units(&self) -> u64 {
        self.reports.iter().map(|r| r.skipped_units()).sum()
    }

    /// The canonical `executed …, replayed …, skipped … of … unit(s) in
    /// X.Ys` summary for this run; see [`work_summary`].
    pub fn summary(&self, elapsed: Duration) -> String {
        work_summary(
            self.executed_units,
            self.replayed_units,
            self.skipped_units(),
            self.total_units,
            elapsed,
        )
    }
}

/// What one stream run did: the aggregated report plus the work
/// accounting that makes the replay guarantee checkable — a second run
/// of an unchanged stream must show `executed_units == 0`.
#[derive(Debug)]
pub struct StreamOutcome {
    /// The per-checkpoint report.
    pub report: StreamReport,
    /// Total checkpoint units in the stream.
    pub total_units: usize,
    /// Units that actually invoked a detector in this run.
    pub executed_units: usize,
    /// Units served without a detector invocation (from the result
    /// store, or deduplicated within the run).
    pub replayed_units: usize,
}

/// What a multi-stream run did; see [`Engine::run_streams`].
#[derive(Debug)]
pub struct StreamSuiteOutcome {
    /// One report per input stream, in input order.
    pub reports: Vec<StreamReport>,
    /// Total checkpoint units across all streams (duplicates counted
    /// per stream).
    pub total_units: usize,
    /// Units that actually invoked a detector in this run.
    pub executed_units: usize,
    /// Units served without a detector invocation.
    pub replayed_units: usize,
}

impl StreamSuiteOutcome {
    /// Units skipped by the schedule's wall-clock cap, across all
    /// reports.
    pub fn skipped_units(&self) -> u64 {
        self.reports.iter().map(StreamReport::skipped_units).sum()
    }

    /// The canonical work summary for this run; see [`work_summary`].
    pub fn summary(&self, elapsed: Duration) -> String {
        work_summary(
            self.executed_units,
            self.replayed_units,
            self.skipped_units(),
            self.total_units,
            elapsed,
        )
    }
}

/// Splits the machine's thread budget between pool workers and
/// intra-run simulation threads (the simulator's own persistent
/// superstep pool, `congest_sim::pool`): explicit backend thread
/// counts are clamped to the machine, then the worker count is reduced
/// until `workers × sim_threads ≤ available` (both stay ≥ 1). The
/// sim-thread budget is what the backend will actually use on the
/// sweep's largest
/// requested size, not its worst case — so an `Auto` backend whose
/// threshold no grid size reaches (every unit runs sequentially, e.g.
/// the `paper-exact` defaults) costs the pool nothing. Sizes are the
/// *requested* n; families that snap sizes move them by at most a few
/// nodes, which cannot flip a threshold comparison that matters.
fn split_thread_budget(
    workers: usize,
    backend: even_cycle::Backend,
    max_size: usize,
    available: usize,
) -> (usize, even_cycle::Backend) {
    let available = available.max(1);
    let backend = backend.clamped(available);
    let sim = backend.effective_threads(max_size).max(1);
    (workers.clamp(1, (available / sim).max(1)), backend)
}

/// Executes one work unit: build (or fetch) the instance, run the
/// detector, extract the metric. `budget` is the scenario's budget
/// with the backend already split against the worker count.
#[allow(clippy::too_many_arguments)]
fn execute_unit(
    scenario: &Scenario,
    budget: &even_cycle::Budget,
    graphs: &GraphCache,
    detector: &dyn Detector,
    id: &str,
    key: &str,
    n: usize,
    seed: u64,
) -> UnitRecord {
    let g = graphs.get(&scenario.family, n, seed);
    record_detection(scenario.metric, &g, budget, detector, id, key, n, seed)
}

/// Runs one detector on one concrete graph and folds the detection into
/// a [`UnitRecord`] — the one recording path shared by static sweep
/// units (graphs from the cache), stream checkpoint units (snapshots
/// from a schedule replay), and [`serve`](crate::serve) detection
/// requests, so all three record and aggregate identically by
/// construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_detection(
    metric: Metric,
    g: &congest_graph::Graph,
    budget: &even_cycle::Budget,
    detector: &dyn Detector,
    id: &str,
    key: &str,
    n: usize,
    seed: u64,
) -> UnitRecord {
    let mut record = UnitRecord {
        key: key.to_string(),
        det: id.to_string(),
        n,
        seed,
        status: UnitStatus::Ok,
        node_count: g.node_count() as u64,
        value: 0.0,
        rejected: false,
        rounds: 0,
        supersteps: 0,
        messages: 0,
        words: 0,
        max_congestion: 0,
        iterations: 0,
    };
    let mut span = telemetry::Span::begin("engine.unit")
        .with("unit", key)
        .with("det", id)
        .with("n", n)
        .with("seed", seed);
    // audit:allow(R2): unit timing feeds the telemetry span and the
    // cost-model estimate refresh — never a stored or reported verdict.
    let started = Instant::now();
    match detector.detect(g, seed, budget) {
        Ok(detection) => {
            record.status = if detection.budget_exceeded() {
                UnitStatus::BudgetExceeded
            } else {
                UnitStatus::Ok
            };
            record.rejected = detection.rejected();
            record.value = metric.extract(&detection);
            record.rounds = detection.cost.rounds;
            record.supersteps = detection.cost.supersteps;
            record.messages = detection.cost.messages;
            record.words = detection.cost.words;
            record.max_congestion = detection.cost.max_congestion;
            record.iterations = detection.cost.iterations;
        }
        Err(e) => record.status = UnitStatus::Error(e.to_string()),
    }
    let metrics = engine_metrics();
    metrics.units_executed.inc();
    metrics
        .unit_ns
        .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    span.push("rounds", record.rounds);
    span.push(
        "status",
        match &record.status {
            UnitStatus::Ok => "ok",
            UnitStatus::BudgetExceeded => "budget-exceeded",
            UnitStatus::Error(_) => "error",
        },
    );
    record
}

/// Folds stream checkpoint records (in canonical checkpoint-major
/// order) into per-detector rows — sequential, one canonical f64
/// addition order, so stream reports are byte-identical across worker
/// counts and resumes, exactly like [`aggregate`] for static sweeps.
fn aggregate_stream(
    scenario: &StreamScenario,
    detectors: &[&dyn Detector],
    records: &[Option<UnitRecord>],
) -> StreamReport {
    #[derive(Default)]
    struct Cell {
        total: f64,
        ok: u64,
        rejections: u64,
    }
    #[derive(Default)]
    struct Acc {
        cells: Vec<Cell>,
        rejections: u64,
        errors: u64,
        budget_exceeded: u64,
        skipped: u64,
    }
    let checkpoints = scenario.updates.checkpoints;
    let mut accs: Vec<Acc> = detectors
        .iter()
        .map(|_| Acc {
            cells: (0..checkpoints).map(|_| Cell::default()).collect(),
            ..Default::default()
        })
        .collect();

    let dets = detectors.len();
    let per_checkpoint = scenario.seeds.len() * dets;
    for (unit, record) in records.iter().enumerate() {
        let ci = unit / per_checkpoint;
        let di = unit % dets;
        let acc = &mut accs[di];
        let Some(record) = record else {
            acc.skipped += 1;
            continue;
        };
        match &record.status {
            UnitStatus::Ok => {
                if record.rejected {
                    acc.rejections += 1;
                    acc.cells[ci].rejections += 1;
                }
                let cell = &mut acc.cells[ci];
                cell.total += scenario.metric.extract_cost(&record.cost());
                cell.ok += 1;
            }
            UnitStatus::BudgetExceeded => acc.budget_exceeded += 1,
            UnitStatus::Error(_) => acc.errors += 1,
        }
    }

    let rows = detectors
        .iter()
        .zip(accs)
        .map(|(det, acc)| {
            let descriptor = det.descriptor();
            let cells = acc
                .cells
                .iter()
                .enumerate()
                .map(|(ci, cell)| CheckpointCell {
                    checkpoint: ci,
                    updates_applied: (ci + 1) * scenario.updates.rate,
                    mean: if cell.ok > 0 {
                        cell.total / cell.ok as f64
                    } else {
                        f64::NAN
                    },
                    ok: cell.ok,
                    rejections: cell.rejections,
                })
                .collect();
            StreamRow {
                id: descriptor.id(),
                descriptor,
                cells,
                rejections: acc.rejections,
                errors: acc.errors,
                budget_exceeded: acc.budget_exceeded,
                skipped: acc.skipped,
            }
        })
        .collect();
    StreamReport {
        scenario: scenario.name.clone(),
        schedule: scenario.updates.canonical_label(),
        metric: scenario.metric,
        bandwidth: scenario.budget.bandwidth,
        n: scenario.n,
        runs_per_checkpoint: scenario.seeds.len(),
        rows,
    }
}

/// Folds unit records (in canonical order) into the per-detector rows —
/// the same arithmetic, in the same order, as the original sequential
/// runner, so reports are byte-identical across worker counts and
/// resumes. A missing record (a unit the wall-clock cap skipped) is
/// counted per row, not aggregated.
fn aggregate(
    scenario: &Scenario,
    detectors: &[&dyn Detector],
    records: &[Option<UnitRecord>],
) -> ScenarioReport {
    #[derive(Default)]
    struct Cell {
        total: f64,
        node_count: u64,
        ok: u64,
    }
    #[derive(Default)]
    struct Acc {
        cells: Vec<Cell>,
        rejections: u64,
        errors: u64,
        budget_exceeded: u64,
        skipped: u64,
    }
    let mut accs: Vec<Acc> = detectors
        .iter()
        .map(|_| Acc {
            cells: scenario.sizes.iter().map(|_| Cell::default()).collect(),
            ..Default::default()
        })
        .collect();

    let dets = detectors.len();
    let per_size = scenario.seeds.len() * dets;
    for (unit, record) in records.iter().enumerate() {
        let si = unit / per_size;
        let di = unit % dets;
        let acc = &mut accs[di];
        let Some(record) = record else {
            acc.skipped += 1;
            continue;
        };
        match &record.status {
            UnitStatus::Ok => {
                if record.rejected {
                    acc.rejections += 1;
                }
                let cell = &mut acc.cells[si];
                cell.total += scenario.metric.extract_cost(&record.cost());
                // Families snap requested sizes (primes, parity); fit
                // against the graphs actually built, not the request.
                cell.node_count += record.node_count;
                cell.ok += 1;
            }
            // A certified rejection always keeps its Reject verdict
            // through a cap (status Ok), so this arm only sees runs
            // that were genuinely cut off undecided.
            UnitStatus::BudgetExceeded => acc.budget_exceeded += 1,
            UnitStatus::Error(_) => acc.errors += 1,
        }
    }

    let rows = detectors
        .iter()
        .zip(accs)
        .map(|(det, acc)| {
            let descriptor = det.descriptor();
            let samples: Vec<(usize, f64)> = acc
                .cells
                .iter()
                .filter(|c| c.ok > 0)
                .map(|c| ((c.node_count / c.ok) as usize, c.total / c.ok as f64))
                .collect();
            let (fitted_exponent, fitted_constant) = if samples.len() >= 2
                && samples.iter().all(|&(_, v)| v > 0.0)
            {
                let pairs: Vec<(f64, f64)> = samples.iter().map(|&(n, v)| (n as f64, v)).collect();
                fit_exponent(&pairs)
            } else {
                (f64::NAN, f64::NAN)
            };
            ScenarioRow {
                id: descriptor.id(),
                descriptor,
                samples,
                fitted_exponent,
                fitted_constant,
                rejections: acc.rejections,
                errors: acc.errors,
                budget_exceeded: acc.budget_exceeded,
                skipped: acc.skipped,
            }
        })
        .collect();
    ScenarioReport {
        scenario: scenario.name.clone(),
        family: scenario.family.name().to_string(),
        metric: scenario.metric,
        bandwidth: scenario.budget.bandwidth,
        runs_per_size: scenario.seeds.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GraphFamily, Metric};
    use even_cycle::{Backend, CycleDetector, Params};

    #[test]
    fn thread_budget_split_never_oversubscribes() {
        for (workers, backend, max_size, avail) in [
            (8, Backend::Sequential, 64, 4),
            (8, Backend::Parallel { threads: 2 }, 64, 4),
            (8, Backend::Parallel { threads: 16 }, 64, 4),
            (1, Backend::Parallel { threads: 3 }, 64, 8),
            (3, Backend::auto(), 64, 1),
            (3, Backend::auto(), 1_000_000, 1),
        ] {
            let (w, b) = split_thread_budget(workers, backend, max_size, avail);
            assert!(w >= 1);
            assert!(
                w * b.effective_threads(max_size) <= avail.max(1),
                "({workers}, {backend}, {max_size}, {avail}) -> ({w}, {b}) oversubscribes"
            );
        }
        // Sequential backends leave the worker budget alone.
        assert_eq!(
            split_thread_budget(6, Backend::Sequential, 64, 8),
            (6, Backend::Sequential)
        );
        // An Auto backend below its threshold runs every unit
        // sequentially, so it must not cost the pool anything (the
        // paper-exact default grid tops out far below the threshold).
        let small = Backend::DEFAULT_AUTO_NODE_THRESHOLD - 1;
        assert_eq!(
            split_thread_budget(6, Backend::auto(), small, 8),
            (6, Backend::auto())
        );
        // At or above the threshold it budgets for the parallel flip.
        let (w, _) = split_thread_budget(6, Backend::auto(), small + 1, 8);
        assert!(w * Backend::auto().effective_threads(small + 1) <= 8);
        // An explicit per-run thread count is clamped to the machine.
        let (w, b) = split_thread_budget(4, Backend::Parallel { threads: 64 }, 64, 4);
        assert_eq!(b, Backend::Parallel { threads: 4 });
        assert_eq!(w, 1);
    }

    #[test]
    fn backend_choice_cannot_move_the_report() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let dets: Vec<&dyn Detector> = vec![&det];
        let scenario = |backend: Backend| {
            Scenario::new("backend smoke", GraphFamily::planted_cycle(4))
                .sizes(&[24, 32])
                .seeds(0..2)
                .metric(Metric::Rounds)
                .budget(even_cycle::Budget::classical().with_backend(backend))
        };
        let seq = Engine::from_env().run(&scenario(Backend::Sequential), &dets);
        for backend in [
            Backend::Parallel { threads: 2 },
            Backend::Parallel { threads: 4 },
            Backend::Auto { node_threshold: 1 },
        ] {
            let par = Engine::from_env().run(&scenario(backend), &dets);
            assert_eq!(seq.to_json(), par.to_json(), "{backend}");
        }
    }

    #[test]
    fn worker_counts_agree() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let scenario = Scenario::new("pool smoke", GraphFamily::planted_cycle(4))
            .sizes(&[24, 32])
            .seeds(0..2)
            .metric(Metric::Rounds);
        let dets: Vec<&dyn Detector> = vec![&det];
        let seq = Engine::from_env().with_workers(1).run(&scenario, &dets);
        let par = Engine::from_env().with_workers(4).run(&scenario, &dets);
        assert_eq!(seq.to_json(), par.to_json());
    }
}
