//! Budget-aware scheduling: which pending work units run, and in what
//! order, when a sweep cannot afford to run everything.
//!
//! Two knobs, composable:
//!
//! * **Order** — [`ScheduleOrder::CheapestFirst`] sorts pending units
//!   by an a-priori cost estimate (the detector's theoretical exponent
//!   applied to the instance size) so a capped run banks the most
//!   finished units per second of wall clock. "Runtime depends on the
//!   instance" sweeps waste their budget under static sharding; a
//!   cheapest-first queue turns the same budget into a maximal prefix
//!   of completed cells. The report itself is order-independent —
//!   aggregation always folds records in canonical unit order.
//! * **Wall-clock cap** — [`Schedule::with_wall_clock_cap`] stops
//!   *dispatching* new units once the cap elapses (in-flight units run
//!   to completion). Combined with the per-unit result store this
//!   makes `paper-exact` sweeps usable in CI as progressive
//!   refinement: each capped run persists what it finished, and the
//!   next run resumes from there with zero replayed invocations.

use std::time::Duration;

/// The order pending units are dispatched in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleOrder {
    /// Canonical sweep order (size-major, then seed, then detector).
    InOrder,
    /// Cheapest estimated unit first (ties broken by canonical order,
    /// so the schedule is deterministic).
    CheapestFirst,
}

impl ScheduleOrder {
    /// The order's canonical name (`in-order`, `cheapest-first`).
    pub fn name(self) -> &'static str {
        match self {
            ScheduleOrder::InOrder => "in-order",
            ScheduleOrder::CheapestFirst => "cheapest-first",
        }
    }

    /// Parses an order name (canonical and underscore spellings).
    pub fn parse(s: &str) -> Option<ScheduleOrder> {
        match s {
            "in-order" | "in_order" | "canonical" => Some(ScheduleOrder::InOrder),
            "cheapest-first" | "cheapest_first" | "cheapest" => Some(ScheduleOrder::CheapestFirst),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScheduleOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete scheduling policy for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Dispatch order for pending units.
    pub order: ScheduleOrder,
    /// Stop dispatching new units after this much wall clock (`None`:
    /// run everything).
    pub wall_clock_cap: Option<Duration>,
}

impl Schedule {
    /// Canonical order, no cap — the engine default.
    pub fn in_order() -> Self {
        Schedule {
            order: ScheduleOrder::InOrder,
            wall_clock_cap: None,
        }
    }

    /// Cheapest-estimated-unit-first, no cap.
    pub fn cheapest_first() -> Self {
        Schedule {
            order: ScheduleOrder::CheapestFirst,
            wall_clock_cap: None,
        }
    }

    /// Caps dispatch at `cap` of wall clock; skipped units are counted
    /// in the report and resumed from the store on the next run.
    pub fn with_wall_clock_cap(mut self, cap: Duration) -> Self {
        self.wall_clock_cap = Some(cap);
        self
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::in_order()
    }
}

/// An a-priori cost estimate for one work unit: the detector's
/// theoretical round exponent applied to the instance size. Deliberately
/// crude — it only has to *order* units, and for that, a power law in
/// `n` with the right exponent dominates any constant it misses. A
/// non-finite or non-positive exponent (baselines that report no
/// theory bound) falls back to linear.
pub fn estimate_cost(n: usize, exponent: f64) -> f64 {
    let e = if exponent.is_finite() && exponent > 0.0 {
        exponent
    } else {
        1.0
    };
    (n.max(2) as f64).powf(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_names_parse_back() {
        for o in [ScheduleOrder::InOrder, ScheduleOrder::CheapestFirst] {
            assert_eq!(ScheduleOrder::parse(o.name()), Some(o));
        }
        assert_eq!(ScheduleOrder::parse("nope"), None);
    }

    #[test]
    fn estimates_order_by_size_and_exponent() {
        // Bigger instance, same detector: more expensive.
        assert!(estimate_cost(128, 1.5) > estimate_cost(64, 1.5));
        // Same instance, steeper theory: more expensive.
        assert!(estimate_cost(64, 2.0) > estimate_cost(64, 1.5));
        // Missing theory falls back to linear, not zero.
        assert_eq!(estimate_cost(64, f64::NAN), 64.0);
        assert_eq!(estimate_cost(64, -1.0), 64.0);
    }

    #[test]
    fn default_schedule_is_uncapped_in_order() {
        let s = Schedule::default();
        assert_eq!(s.order, ScheduleOrder::InOrder);
        assert!(s.wall_clock_cap.is_none());
        let capped = Schedule::cheapest_first().with_wall_clock_cap(Duration::from_secs(3));
        assert_eq!(capped.wall_clock_cap, Some(Duration::from_secs(3)));
    }
}
