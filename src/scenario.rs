//! The scenario runner: `graph family × detector × bandwidth ×
//! seed-sweep → ScenarioReport` with fitted scaling exponents.
//!
//! This replaces the copy-pasted measurement loops that each benchmark
//! binary used to carry: declare *what* to measure (a family of
//! instances, a metric, a budget, a seed sweep) and run any set of
//! [`Detector`]s through it. New workload matrices are a few lines.
//!
//! ```
//! use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
//! use even_cycle_congest::cycle::{Budget, CycleDetector, Detector, Params};
//!
//! let scenario = Scenario::new("trees", GraphFamily::random_trees())
//!     .sizes(&[32, 64, 128])
//!     .seeds(0..2)
//!     .metric(Metric::RoundsPerIteration);
//! let det = CycleDetector::new(Params::practical(2).with_repetitions(4));
//! let report = scenario.run(&[&det]);
//! assert_eq!(report.rows.len(), 1);
//! assert!(report.rows[0].samples.len() == 3);
//! println!("{}", report.render());
//! ```

use std::ops::Range;
use std::rc::Rc;

use congest_graph::{generators, Graph};
use even_cycle::theory::fit_exponent;
use even_cycle::{Budget, Descriptor, Detector};

/// A sized, seeded family of instances: `build(n, seed)` produces a
/// graph of (approximately) `n` vertices.
#[derive(Clone)]
pub struct GraphFamily {
    name: String,
    build: Rc<dyn Fn(usize, u64) -> Graph>,
}

impl std::fmt::Debug for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl GraphFamily {
    /// A custom family from a builder function.
    pub fn new(name: impl Into<String>, build: impl Fn(usize, u64) -> Graph + 'static) -> Self {
        GraphFamily {
            name: name.into(),
            build: Rc::new(build),
        }
    }

    /// The family's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the instance of size `n` for `seed`.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        (self.build)(n, seed)
    }

    /// Uniform random trees (sparse, cycle-free hosts).
    pub fn random_trees() -> Self {
        GraphFamily::new("random trees", |n, seed| {
            generators::random_tree(n.max(2), seed)
        })
    }

    /// Random trees with one planted `C_ℓ` (the standard yes-instance).
    pub fn planted_cycle(l: usize) -> Self {
        GraphFamily::new(format!("planted C{l} on trees"), move |n, seed| {
            let host = generators::random_tree(n.max(l + 1), seed);
            generators::plant_cycle(&host, l, seed).0
        })
    }

    /// Near-regular graphs of degree `≈ n^{1/k}` (the light/heavy
    /// boundary of Algorithm 1).
    pub fn regularish_boundary(k: usize) -> Self {
        GraphFamily::new(format!("n^(1/{k})-regular"), move |n, seed| {
            let d = (n as f64).powf(1.0 / k as f64).ceil() as usize + 1;
            let n_even = n + (n * d) % 2;
            generators::random_regular_ish(n_even, d, seed)
        })
    }

    /// Erdős–Rényi graphs with expected degree `deg`.
    pub fn erdos_renyi(deg: f64) -> Self {
        GraphFamily::new(format!("ER (avg deg {deg})"), move |n, seed| {
            let n = n.max(4);
            generators::erdos_renyi(n, (deg / n as f64).min(1.0), seed)
        })
    }

    /// Random bipartite graphs (odd-cycle-free controls).
    pub fn random_bipartite(p: f64) -> Self {
        GraphFamily::new(format!("bipartite (p = {p})"), move |n, seed| {
            let half = (n / 2).max(2);
            generators::random_bipartite(half, half, p, seed)
        })
    }

    /// Congestion funnels — the adversarial hosts driving the per-edge
    /// load of Algorithm 1's second color-BFS to its `Θ(n^{1-1/k})`
    /// worst case.
    pub fn funnel(branches: usize, k: usize) -> Self {
        GraphFamily::new(format!("funnel (b = {branches}, k = {k})"), move |n, _| {
            generators::funnel(n.max(16), branches, k)
        })
    }
}

/// What to extract from each [`Detection`](even_cycle::Detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Rounds in the algorithm's cost model.
    Rounds,
    /// Rounds divided by outer-loop iterations (the per-iteration cost
    /// whose `n`-scaling Table 1 reports; falls back to total rounds
    /// when an algorithm reports no iterations).
    RoundsPerIteration,
    /// Maximum words on any edge in any superstep.
    MaxCongestion,
    /// Total point-to-point messages.
    Messages,
    /// Total words sent.
    Words,
}

impl Metric {
    /// A short label for table headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Rounds => "rounds",
            Metric::RoundsPerIteration => "rounds/iter",
            Metric::MaxCongestion => "max edge load",
            Metric::Messages => "messages",
            Metric::Words => "words",
        }
    }

    fn extract(self, d: &even_cycle::Detection) -> f64 {
        match self {
            Metric::Rounds => d.cost.rounds as f64,
            Metric::RoundsPerIteration => d.cost.rounds as f64 / d.cost.iterations.max(1) as f64,
            Metric::MaxCongestion => d.cost.max_congestion as f64,
            Metric::Messages => d.cost.messages as f64,
            Metric::Words => d.cost.words as f64,
        }
    }
}

/// A declarative measurement: family × sizes × seeds × budget × metric.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    family: GraphFamily,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    budget: Budget,
    metric: Metric,
}

impl Scenario {
    /// Creates a scenario with defaults: sizes `[64, 128, 256]`, seeds
    /// `0..3`, classical budget, [`Metric::Rounds`].
    pub fn new(name: impl Into<String>, family: GraphFamily) -> Self {
        Scenario {
            name: name.into(),
            family,
            sizes: vec![64, 128, 256],
            seeds: (0..3).collect(),
            budget: Budget::classical(),
            metric: Metric::Rounds,
        }
    }

    /// Sets the instance sizes (must be non-empty and increasing for a
    /// meaningful fit).
    pub fn sizes(mut self, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one size");
        self.sizes = sizes.to_vec();
        self
    }

    /// Sets the seed sweep; per-size values average over it.
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        assert!(!seeds.is_empty(), "need at least one seed");
        self.seeds = seeds.collect();
        self
    }

    /// Sets the resource budget (bandwidth, repetition override).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the extracted metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Runs every detector through the scenario matrix.
    ///
    /// Simulator failures do not abort the sweep: failed runs are
    /// counted per row (`errors`) and excluded from the averages, so a
    /// single pathological instance cannot take down a whole report.
    pub fn run(&self, detectors: &[&dyn Detector]) -> ScenarioReport {
        #[derive(Default)]
        struct Cell {
            total: f64,
            node_count: u64,
            ok: u64,
        }
        #[derive(Default)]
        struct Acc {
            cells: Vec<Cell>,
            rejections: u64,
            errors: u64,
        }
        let mut accs: Vec<Acc> = detectors
            .iter()
            .map(|_| Acc {
                cells: self.sizes.iter().map(|_| Cell::default()).collect(),
                ..Default::default()
            })
            .collect();

        // Instances outer, detectors inner: each (size, seed) graph is
        // built once and shared by every detector.
        for (si, &n) in self.sizes.iter().enumerate() {
            for &seed in &self.seeds {
                let g = self.family.build(n, seed);
                for (det, acc) in detectors.iter().zip(accs.iter_mut()) {
                    match det.detect(&g, seed, &self.budget) {
                        Ok(detection) => {
                            if detection.rejected() {
                                acc.rejections += 1;
                            }
                            let cell = &mut acc.cells[si];
                            cell.total += self.metric.extract(&detection);
                            // Families snap requested sizes (primes,
                            // parity); fit against the graphs actually
                            // built, not the request.
                            cell.node_count += g.node_count() as u64;
                            cell.ok += 1;
                        }
                        Err(_) => acc.errors += 1,
                    }
                }
            }
        }

        let rows = detectors
            .iter()
            .zip(accs)
            .map(|(det, acc)| {
                let descriptor = det.descriptor();
                let samples: Vec<(usize, f64)> = acc
                    .cells
                    .iter()
                    .filter(|c| c.ok > 0)
                    .map(|c| ((c.node_count / c.ok) as usize, c.total / c.ok as f64))
                    .collect();
                let (fitted_exponent, fitted_constant) =
                    if samples.len() >= 2 && samples.iter().all(|&(_, v)| v > 0.0) {
                        let pairs: Vec<(f64, f64)> =
                            samples.iter().map(|&(n, v)| (n as f64, v)).collect();
                        fit_exponent(&pairs)
                    } else {
                        (f64::NAN, f64::NAN)
                    };
                ScenarioRow {
                    id: descriptor.id(),
                    descriptor,
                    samples,
                    fitted_exponent,
                    fitted_constant,
                    rejections: acc.rejections,
                    errors: acc.errors,
                }
            })
            .collect();
        ScenarioReport {
            scenario: self.name.clone(),
            family: self.family.name().to_string(),
            metric: self.metric,
            bandwidth: self.budget.bandwidth,
            runs_per_size: self.seeds.len(),
            rows,
        }
    }

    /// Runs every entry of a registry through the scenario.
    pub fn run_registry(&self, registry: &crate::registry::DetectorRegistry) -> ScenarioReport {
        let dets: Vec<&dyn Detector> = registry.iter().map(|e| e.detector.as_ref()).collect();
        self.run(&dets)
    }
}

/// One detector's measured series.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The registry-style identifier.
    pub id: String,
    /// The algorithm's metadata (carries the theory exponent to compare
    /// the fit against).
    pub descriptor: Descriptor,
    /// `(n, mean metric value)` per size, increasing `n`.
    pub samples: Vec<(usize, f64)>,
    /// Fitted exponent `α` of `value ≈ c·n^α` (NaN with < 2 samples or
    /// non-positive values).
    pub fitted_exponent: f64,
    /// Fitted constant `c`.
    pub fitted_constant: f64,
    /// Rejecting runs across the whole sweep.
    pub rejections: u64,
    /// Runs that returned a simulator error (excluded from averages).
    pub errors: u64,
}

/// The rendered result of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Family name.
    pub family: String,
    /// The metric measured.
    pub metric: Metric,
    /// The bandwidth the budget charged.
    pub bandwidth: u64,
    /// Seeds averaged per size.
    pub runs_per_size: usize,
    /// One row per detector.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioReport {
    /// Renders an aligned text block: one line per detector with the
    /// fitted vs theoretical exponent, then the per-size samples.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== scenario: {} — {} on {} (B = {}, {} seeds/size) ==\n",
            self.scenario,
            self.metric.label(),
            self.family,
            self.bandwidth,
            self.runs_per_size,
        );
        for row in &self.rows {
            let fit = if row.fitted_exponent.is_nan() {
                "n^?".to_string()
            } else {
                format!("n^{:.3}", row.fitted_exponent)
            };
            out.push_str(&format!(
                "{:<44} fit {:<8} theory n^{:.3}  rejections {}  errors {}\n",
                row.id, fit, row.descriptor.exponent, row.rejections, row.errors
            ));
            for &(n, v) in &row.samples {
                out.push_str(&format!("    n = {n:>7}  ->  {v:>14.1}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use even_cycle::{CycleDetector, Params};

    #[test]
    fn scenario_measures_and_fits() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(3));
        let report = Scenario::new("smoke", GraphFamily::random_trees())
            .sizes(&[32, 64, 128])
            .seeds(0..2)
            .metric(Metric::RoundsPerIteration)
            .run(&[&det]);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.samples.len(), 3);
        assert_eq!(row.errors, 0);
        assert!(!row.fitted_exponent.is_nan());
        assert!(report.render().contains("theory n^0.500"));
    }

    #[test]
    fn bandwidth_reduces_rounds() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(3));
        let narrow = Scenario::new("b1", GraphFamily::planted_cycle(4))
            .sizes(&[64])
            .seeds(0..2)
            .run(&[&det]);
        let wide = Scenario::new("b8", GraphFamily::planted_cycle(4))
            .sizes(&[64])
            .seeds(0..2)
            .budget(Budget::classical().with_bandwidth(8))
            .run(&[&det]);
        let r1 = narrow.rows[0].samples[0].1;
        let r8 = wide.rows[0].samples[0].1;
        assert!(
            r8 <= r1,
            "bandwidth 8 must not cost more rounds ({r8} vs {r1})"
        );
    }

    #[test]
    fn registry_sweep_produces_a_row_per_entry() {
        let registry = crate::registry::DetectorRegistry::standard(2);
        // Tiny sweep: just check plumbing, not statistics.
        let report = Scenario::new("registry smoke", GraphFamily::random_trees())
            .sizes(&[24])
            .seeds(0..1)
            .run_registry(&registry);
        assert_eq!(report.rows.len(), registry.len());
        // Trees are cycle-free: one-sidedness means zero rejections
        // everywhere.
        assert!(report.rows.iter().all(|r| r.rejections == 0));
    }
}
