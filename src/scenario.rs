//! The scenario runner: `graph family × detector × bandwidth ×
//! seed-sweep → ScenarioReport` with fitted scaling exponents.
//!
//! This replaces the copy-pasted measurement loops that each benchmark
//! binary used to carry: declare *what* to measure (a family of
//! instances, a metric, a budget, a seed sweep) and run any set of
//! [`Detector`]s through it. New workload matrices are a few lines.
//!
//! Execution is delegated to the [`engine`](crate::engine): the sweep
//! matrix is sharded into `(size, seed, detector)` work units across a
//! worker pool ([`Scenario::workers`], or the `EVEN_CYCLE_WORKERS`
//! environment variable), with results re-assembled in unit order so
//! the report is byte-identical to a sequential run. With
//! [`Scenario::store`] set, every unit lands in a per-unit
//! content-addressed JSONL result store: re-running a completed sweep
//! replays the store without invoking any detector, and extending the
//! grid (a size rung, a seed, a detector) executes only the new cells.
//! [`Scenario::schedule`] picks the dispatch order and an optional
//! wall-clock cap for progressive refinement of expensive sweeps.
//!
//! ```
//! use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
//! use even_cycle_congest::cycle::{Budget, CycleDetector, Detector, Params};
//!
//! let scenario = Scenario::new("trees", GraphFamily::random_trees())
//!     .sizes(&[32, 64, 128])
//!     .seeds(0..2)
//!     .metric(Metric::RoundsPerIteration);
//! let det = CycleDetector::new(Params::practical(2).with_repetitions(4));
//! let report = scenario.run(&[&det]);
//! assert_eq!(report.rows.len(), 1);
//! assert!(report.rows[0].samples.len() == 3);
//! println!("{}", report.render());
//! ```

use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use congest_graph::{FamilySpec, Graph};
use even_cycle::{Backend, Budget, Descriptor, Detector};

use crate::engine::store::{json_escape, json_f64};
use crate::engine::{Engine, Schedule};

/// A sized, seeded family of instances: `build(n, seed)` produces a
/// graph of (approximately) `n` vertices.
///
/// Almost every family is a typed [`FamilySpec`] — parseable,
/// comparable, and fingerprintable, which is what lets the engine's
/// result store key work units by the family's *full identity*
/// (name and parameters) instead of a free-form display name. The
/// [`GraphFamily::custom`] escape hatch still admits arbitrary builder
/// closures, but demands an explicit version string that becomes part
/// of the store identity: bump it whenever the construction changes,
/// or stale stored results would replay against the new graphs.
#[derive(Clone)]
pub struct GraphFamily {
    label: String,
    kind: FamilyKind,
}

#[derive(Clone)]
enum FamilyKind {
    Spec(FamilySpec),
    Custom {
        version: String,
        build: Arc<dyn Fn(usize, u64) -> Graph + Send + Sync>,
    },
}

impl std::fmt::Debug for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("GraphFamily");
        s.field("label", &self.label);
        match &self.kind {
            FamilyKind::Spec(spec) => s.field("spec", spec).finish(),
            FamilyKind::Custom { version, .. } => {
                s.field("version", version).finish_non_exhaustive()
            }
        }
    }
}

impl From<FamilySpec> for GraphFamily {
    fn from(spec: FamilySpec) -> Self {
        GraphFamily {
            label: spec.canonical_label(),
            kind: FamilyKind::Spec(spec),
        }
    }
}

impl GraphFamily {
    /// Parses a family spec string (`planted:4`, `ws:6:0.1`, …) — the
    /// shared catalog parser every binary and suite file routes
    /// through ([`FamilySpec::parse`]).
    ///
    /// # Errors
    ///
    /// The shared error format; unknown families list the catalog.
    pub fn parse(spec: &str) -> Result<GraphFamily, String> {
        FamilySpec::parse(spec).map(GraphFamily::from)
    }

    /// A custom family from a builder closure — the escape hatch for
    /// constructions outside the [`FamilySpec`] catalog.
    ///
    /// A closure cannot be fingerprinted, so its store identity is
    /// `name` + the explicit `version` string: **bump the version
    /// whenever the builder's behavior changes**, or previously stored
    /// results would silently replay against the new graphs. (Catalog
    /// families don't carry this risk — their fingerprint covers every
    /// parameter.)
    pub fn custom(
        name: impl Into<String>,
        version: impl Into<String>,
        build: impl Fn(usize, u64) -> Graph + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        let version = version.into();
        assert!(
            !version.trim().is_empty(),
            "custom families require a non-empty version string (their store identity)"
        );
        GraphFamily {
            label: name,
            kind: FamilyKind::Custom {
                version,
                build: Arc::new(build),
            },
        }
    }

    /// The family's display name (the canonical spec label for catalog
    /// families).
    pub fn name(&self) -> &str {
        &self.label
    }

    /// The typed spec, for catalog families.
    pub fn as_spec(&self) -> Option<&FamilySpec> {
        match &self.kind {
            FamilyKind::Spec(spec) => Some(spec),
            FamilyKind::Custom { .. } => None,
        }
    }

    /// The family's identity in the engine's result store and graph
    /// cache: the 128-bit spec fingerprint for catalog families
    /// (parameters included — changing `planted:4` to `planted:6`
    /// moves every affected unit key), or `name@version` for custom
    /// builders.
    pub fn store_key(&self) -> String {
        match &self.kind {
            FamilyKind::Spec(spec) => format!("spec:{}", spec.fingerprint_hex()),
            FamilyKind::Custom { version, .. } => {
                format!("custom:{}@{version}", self.label)
            }
        }
    }

    /// Builds the instance of size `n` for `seed` (deterministic in
    /// `(n, seed)` — the graph cache and the result store both rely on
    /// replayability).
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match &self.kind {
            FamilyKind::Spec(spec) => spec.build(n, seed),
            FamilyKind::Custom { build, .. } => build(n, seed),
        }
    }

    /// Uniform random trees (sparse, cycle-free hosts).
    pub fn random_trees() -> Self {
        FamilySpec::RandomTrees.into()
    }

    /// Random trees with one planted `C_ℓ` (the standard yes-instance).
    pub fn planted_cycle(l: usize) -> Self {
        FamilySpec::Planted { l }.into()
    }

    /// Near-regular graphs of degree `≈ n^{1/k}` (the light/heavy
    /// boundary of Algorithm 1).
    pub fn regularish_boundary(k: usize) -> Self {
        FamilySpec::RegularBoundary { k }.into()
    }

    /// Erdős–Rényi graphs with expected degree `deg`.
    pub fn erdos_renyi(deg: f64) -> Self {
        FamilySpec::ErdosRenyi { deg }.into()
    }

    /// Random bipartite graphs (odd-cycle-free controls).
    pub fn random_bipartite(p: f64) -> Self {
        FamilySpec::Bipartite { p }.into()
    }

    /// Congestion funnels — the adversarial hosts driving the per-edge
    /// load of Algorithm 1's second color-BFS to its `Θ(n^{1-1/k})`
    /// worst case.
    pub fn funnel(branches: usize, k: usize) -> Self {
        FamilySpec::Funnel { branches, k }.into()
    }

    /// Extremal `C4`-free polarity hosts (`ER_q` for the largest
    /// admissible prime).
    pub fn polarity() -> Self {
        FamilySpec::Polarity.into()
    }
}

/// Seed sweeps accepted by [`Scenario::seeds`]: a `Range<u64>` (the
/// ergonomic sugar every existing call site uses) or an explicit list
/// (what suite files like `seeds=0,7,42` need).
pub trait IntoSeeds {
    /// The concrete seed list, in sweep order.
    fn into_seeds(self) -> Vec<u64>;
}

impl IntoSeeds for Range<u64> {
    fn into_seeds(self) -> Vec<u64> {
        self.collect()
    }
}

impl IntoSeeds for Vec<u64> {
    fn into_seeds(self) -> Vec<u64> {
        self
    }
}

impl IntoSeeds for &[u64] {
    fn into_seeds(self) -> Vec<u64> {
        self.to_vec()
    }
}

impl<const N: usize> IntoSeeds for [u64; N] {
    fn into_seeds(self) -> Vec<u64> {
        self.to_vec()
    }
}

/// What to extract from each [`Detection`](even_cycle::Detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Rounds in the algorithm's cost model.
    Rounds,
    /// Rounds divided by outer-loop iterations (the per-iteration cost
    /// whose `n`-scaling Table 1 reports; falls back to total rounds
    /// when an algorithm reports no iterations).
    RoundsPerIteration,
    /// Maximum words on any edge in any superstep.
    MaxCongestion,
    /// Total point-to-point messages.
    Messages,
    /// Total words sent.
    Words,
}

impl Metric {
    /// A short label for table headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Rounds => "rounds",
            Metric::RoundsPerIteration => "rounds/iter",
            Metric::MaxCongestion => "max edge load",
            Metric::Messages => "messages",
            Metric::Words => "words",
        }
    }

    /// Parses a command-line spelling (`rounds`, `rounds-per-iter`,
    /// `congestion`, `messages`, `words`).
    pub fn parse(s: &str) -> Option<Metric> {
        match s {
            "rounds" => Some(Metric::Rounds),
            "rounds-per-iter" | "rounds/iter" => Some(Metric::RoundsPerIteration),
            "congestion" | "max-congestion" => Some(Metric::MaxCongestion),
            "messages" => Some(Metric::Messages),
            "words" => Some(Metric::Words),
            _ => None,
        }
    }

    pub(crate) fn extract(self, d: &even_cycle::Detection) -> f64 {
        self.extract_cost(&d.cost)
    }

    /// The metric value of a unified cost — the one implementation
    /// shared by live detections and replayed store records, so both
    /// paths aggregate identically by construction.
    pub(crate) fn extract_cost(self, cost: &even_cycle::RunCost) -> f64 {
        match self {
            Metric::Rounds => cost.rounds as f64,
            Metric::RoundsPerIteration => cost.rounds as f64 / cost.iterations.max(1) as f64,
            Metric::MaxCongestion => cost.max_congestion as f64,
            Metric::Messages => cost.messages as f64,
            Metric::Words => cost.words as f64,
        }
    }
}

/// A declarative measurement: family × sizes × seeds × budget × metric,
/// plus the execution knobs (worker count, result store) the engine
/// honors.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) family: GraphFamily,
    pub(crate) sizes: Vec<usize>,
    pub(crate) seeds: Vec<u64>,
    pub(crate) budget: Budget,
    pub(crate) metric: Metric,
    pub(crate) workers: Option<usize>,
    pub(crate) store: Option<PathBuf>,
    pub(crate) schedule: Option<Schedule>,
}

impl Scenario {
    /// Creates a scenario with defaults: sizes `[64, 128, 256]`, seeds
    /// `0..3`, classical budget, [`Metric::Rounds`].
    pub fn new(name: impl Into<String>, family: GraphFamily) -> Self {
        Scenario {
            name: name.into(),
            family,
            sizes: vec![64, 128, 256],
            seeds: (0..3).collect(),
            budget: Budget::classical(),
            metric: Metric::Rounds,
            workers: None,
            store: None,
            schedule: None,
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's graph family.
    pub fn family(&self) -> &GraphFamily {
        &self.family
    }

    /// The configured instance sizes.
    pub fn sizes_configured(&self) -> &[usize] {
        &self.sizes
    }

    /// The configured seed sweep.
    pub fn seeds_configured(&self) -> &[u64] {
        &self.seeds
    }

    /// Sets the instance sizes (must be non-empty and increasing for a
    /// meaningful fit).
    pub fn sizes(mut self, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one size");
        self.sizes = sizes.to_vec();
        self
    }

    /// Sets the seed sweep; per-size values average over it. Accepts a
    /// range (`0..3`) or an explicit list (`vec![0, 7, 42]`,
    /// `[0, 7, 42]`, `&[0, 7, 42][..]`).
    pub fn seeds(mut self, seeds: impl IntoSeeds) -> Self {
        let seeds = seeds.into_seeds();
        assert!(!seeds.is_empty(), "need at least one seed");
        self.seeds = seeds;
        self
    }

    /// Sets the resource budget (bandwidth, repetition override, hard
    /// round/message caps, simulation backend).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the simulation backend every detector run uses
    /// ([`Backend::Sequential`] | [`Backend::Parallel`] |
    /// [`Backend::Auto`]). Purely a wall-clock knob: reports are
    /// byte-identical across backends and thread counts, and the
    /// engine clamps the worker pool so `workers × sim_threads` never
    /// exceeds the machine's parallelism.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.budget.backend = backend;
        self
    }

    /// Sets the extracted metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the worker-thread count for the sweep (default: the
    /// `EVEN_CYCLE_WORKERS` environment variable, else 1). Any worker
    /// count produces byte-identical reports.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Persists every work unit to a JSONL result store under `dir`
    /// (each unit content-addressed by its full identity) and resumes
    /// from it: units already in the store — including units computed
    /// by previous, smaller grids — are replayed without invoking
    /// their detector.
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// Sets the scheduling policy: dispatch order (in-order or
    /// cheapest-estimated-first) and an optional wall-clock cap under
    /// which undispatched units are skipped, counted, and resumed from
    /// the store on the next run. Default: the engine's in-order,
    /// uncapped schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Runs every detector through the scenario matrix on the
    /// experiment engine.
    ///
    /// Simulator failures do not abort the sweep: failed runs are
    /// counted per row (`errors`) and excluded from the averages, so a
    /// single pathological instance cannot take down a whole report.
    /// Runs cut off by a [`Budget`] cap are likewise counted
    /// (`budget_exceeded`) and excluded.
    pub fn run(&self, detectors: &[&dyn Detector]) -> ScenarioReport {
        let mut engine = Engine::from_env();
        if let Some(w) = self.workers {
            engine = engine.with_workers(w);
        }
        if let Some(dir) = &self.store {
            engine = engine.with_store(dir.clone());
        }
        if let Some(schedule) = self.schedule {
            engine = engine.with_schedule(schedule);
        }
        engine.run(self, detectors)
    }

    /// Runs every entry of a registry through the scenario.
    pub fn run_registry(&self, registry: &crate::registry::DetectorRegistry) -> ScenarioReport {
        let dets: Vec<&dyn Detector> = registry.iter().map(|e| e.detector.as_ref()).collect();
        self.run(&dets)
    }
}

/// One detector's measured series.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The registry-style identifier.
    pub id: String,
    /// The algorithm's metadata (carries the theory exponent to compare
    /// the fit against).
    pub descriptor: Descriptor,
    /// `(n, mean metric value)` per size, increasing `n`.
    pub samples: Vec<(usize, f64)>,
    /// Fitted exponent `α` of `value ≈ c·n^α` (NaN with < 2 samples or
    /// non-positive values).
    pub fitted_exponent: f64,
    /// Fitted constant `c`.
    pub fitted_constant: f64,
    /// Rejecting runs across the whole sweep.
    pub rejections: u64,
    /// Runs that returned a simulator error (excluded from averages).
    pub errors: u64,
    /// Runs aborted by a [`Budget`] cap (excluded from averages).
    pub budget_exceeded: u64,
    /// Units never dispatched because the schedule's wall-clock cap
    /// elapsed first (resumable from the result store).
    pub skipped: u64,
}

/// The rendered result of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Family name.
    pub family: String,
    /// The metric measured.
    pub metric: Metric,
    /// The bandwidth the budget charged.
    pub bandwidth: u64,
    /// Seeds averaged per size.
    pub runs_per_size: usize,
    /// One row per detector.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioReport {
    /// Total units skipped across all rows by the schedule's
    /// wall-clock cap (0 for an uncapped or finished sweep). Non-zero
    /// means the report is a resumable partial: re-running with the
    /// same store picks up the skipped units.
    pub fn skipped_units(&self) -> u64 {
        self.rows.iter().map(|r| r.skipped).sum()
    }

    /// Renders an aligned text block: one line per detector with the
    /// fitted vs theoretical exponent, then the per-size samples.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== scenario: {} — {} on {} (B = {}, {} seeds/size) ==\n",
            self.scenario,
            self.metric.label(),
            self.family,
            self.bandwidth,
            self.runs_per_size,
        );
        for row in &self.rows {
            let fit = if row.fitted_exponent.is_nan() {
                "n^?".to_string()
            } else {
                format!("n^{:.3}", row.fitted_exponent)
            };
            let capped = if row.budget_exceeded > 0 {
                format!("  capped {}", row.budget_exceeded)
            } else {
                String::new()
            };
            let skipped = if row.skipped > 0 {
                format!("  skipped {}", row.skipped)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:<44} fit {:<8} theory n^{:.3}  rejections {}  errors {}{}{}\n",
                row.id, fit, row.descriptor.exponent, row.rejections, row.errors, capped, skipped
            ));
            for &(n, v) in &row.samples {
                out.push_str(&format!("    n = {n:>7}  ->  {v:>14.1}\n"));
            }
        }
        out
    }

    /// Serializes the whole report as one JSON object (a single line —
    /// suitable for JSONL streams). Non-finite fits serialize as
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"scenario\":\"{}\",\"family\":\"{}\",\"metric\":\"{}\",\"bandwidth\":{},\"runs_per_size\":{},\"rows\":[",
            json_escape(&self.scenario),
            json_escape(&self.family),
            json_escape(self.metric.label()),
            self.bandwidth,
            self.runs_per_size,
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"model\":\"{}\",\"target\":\"{}\",\"reference\":\"{}\",\"theory_exponent\":{},\"fitted_exponent\":{},\"fitted_constant\":{},\"rejections\":{},\"errors\":{},\"budget_exceeded\":{},\"skipped\":{},\"samples\":[",
                json_escape(&row.id),
                row.descriptor.model.label(),
                json_escape(&row.descriptor.target.label()),
                json_escape(row.descriptor.reference),
                json_f64(row.descriptor.exponent),
                json_f64(row.fitted_exponent),
                json_f64(row.fitted_constant),
                row.rejections,
                row.errors,
                row.budget_exceeded,
                row.skipped,
            ));
            for (j, &(n, v)) in row.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", n, json_f64(v)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Appends the report as one JSONL line to `path`, creating the
    /// file (and its parent directory) when missing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use even_cycle::{CycleDetector, Params};

    #[test]
    fn scenario_measures_and_fits() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(3));
        let report = Scenario::new("smoke", GraphFamily::random_trees())
            .sizes(&[32, 64, 128])
            .seeds(0..2)
            .metric(Metric::RoundsPerIteration)
            .run(&[&det]);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.samples.len(), 3);
        assert_eq!(row.errors, 0);
        assert!(!row.fitted_exponent.is_nan());
        assert!(report.render().contains("theory n^0.500"));
    }

    #[test]
    fn bandwidth_reduces_rounds() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(3));
        let narrow = Scenario::new("b1", GraphFamily::planted_cycle(4))
            .sizes(&[64])
            .seeds(0..2)
            .run(&[&det]);
        let wide = Scenario::new("b8", GraphFamily::planted_cycle(4))
            .sizes(&[64])
            .seeds(0..2)
            .budget(Budget::classical().with_bandwidth(8))
            .run(&[&det]);
        let r1 = narrow.rows[0].samples[0].1;
        let r8 = wide.rows[0].samples[0].1;
        assert!(
            r8 <= r1,
            "bandwidth 8 must not cost more rounds ({r8} vs {r1})"
        );
    }

    #[test]
    fn registry_sweep_produces_a_row_per_entry() {
        let registry = crate::registry::DetectorRegistry::standard(2);
        // Tiny sweep: just check plumbing, not statistics.
        let report = Scenario::new("registry smoke", GraphFamily::random_trees())
            .sizes(&[24])
            .seeds(0..1)
            .run_registry(&registry);
        assert_eq!(report.rows.len(), registry.len());
        // Trees are cycle-free: one-sidedness means zero rejections
        // everywhere.
        assert!(report.rows.iter().all(|r| r.rejections == 0));
    }

    #[test]
    fn report_json_is_one_line_and_escaped() {
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let report = Scenario::new("json \"smoke\"", GraphFamily::random_trees())
            .sizes(&[24])
            .seeds(0..1)
            .run(&[&det]);
        let json = report.to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"scenario\":\"json \\\"smoke\\\"\""));
        assert!(json.contains("\"rows\":["));
        assert!(json.contains("\"samples\":[[")); // at least one sample
    }

    #[test]
    fn seeds_accept_ranges_and_explicit_lists() {
        let ranged = Scenario::new("r", GraphFamily::random_trees()).seeds(0..3);
        assert_eq!(ranged.seeds, vec![0, 1, 2]);
        let listed = Scenario::new("l", GraphFamily::random_trees()).seeds([0u64, 7, 42]);
        assert_eq!(listed.seeds, vec![0, 7, 42]);
        let vec_form = Scenario::new("v", GraphFamily::random_trees()).seeds(vec![5u64, 9]);
        assert_eq!(vec_form.seeds, vec![5, 9]);
        let slice_form = Scenario::new("s", GraphFamily::random_trees()).seeds(&[1u64, 2][..]);
        assert_eq!(slice_form.seeds, vec![1, 2]);
        // A listed sweep runs end to end like a ranged one.
        let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
        let report = Scenario::new("list smoke", GraphFamily::random_trees())
            .sizes(&[24])
            .seeds([0u64, 3])
            .run(&[&det]);
        assert_eq!(report.runs_per_size, 2);
    }

    #[test]
    fn family_store_keys_cover_parameters_and_versions() {
        // Catalog families: the fingerprint covers parameters.
        let p4 = GraphFamily::planted_cycle(4).store_key();
        let p6 = GraphFamily::planted_cycle(6).store_key();
        assert_ne!(p4, p6, "parameters must move the store key");
        assert!(p4.starts_with("spec:"));
        // The key is the spec fingerprint, not the display name.
        assert_eq!(
            p4,
            format!(
                "spec:{}",
                congest_graph::FamilySpec::Planted { l: 4 }.fingerprint_hex()
            )
        );
        // Custom families: name + explicit version.
        let v1 = GraphFamily::custom("mine", "v1", |n, s| {
            congest_graph::generators::random_tree(n.max(2), s)
        });
        let v2 = GraphFamily::custom("mine", "v2", |n, s| {
            congest_graph::generators::random_tree(n.max(2), s)
        });
        assert_eq!(v1.store_key(), "custom:mine@v1");
        assert_ne!(v1.store_key(), v2.store_key());
        assert!(v1.as_spec().is_none());
        assert!(GraphFamily::random_trees().as_spec().is_some());
    }

    #[test]
    #[should_panic(expected = "version")]
    fn custom_families_require_a_version() {
        let _ = GraphFamily::custom("mine", "  ", |n, s| {
            congest_graph::generators::random_tree(n.max(2), s)
        });
    }

    #[test]
    fn parse_goes_through_the_shared_catalog() {
        let fam = GraphFamily::parse("planted:4").unwrap();
        assert_eq!(fam.name(), "planted:4");
        let err = GraphFamily::parse("nope").unwrap_err();
        assert!(err.contains("known families"));
    }

    #[test]
    fn metric_parse_roundtrips() {
        assert_eq!(Metric::parse("rounds"), Some(Metric::Rounds));
        assert_eq!(
            Metric::parse("rounds-per-iter"),
            Some(Metric::RoundsPerIteration)
        );
        assert_eq!(Metric::parse("congestion"), Some(Metric::MaxCongestion));
        assert_eq!(Metric::parse("nope"), None);
    }
}
