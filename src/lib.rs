//! Even-cycle detection in the randomized and quantum CONGEST model.
//!
//! Facade crate re-exporting the whole workspace — the reproduction of
//! Fraigniaud, Luce, Magniez, Todinca, *Even-Cycle Detection in the
//! Randomized and Quantum CONGEST Model*, PODC 2024 (arXiv:2402.12018).
//!
//! * [`graph`] — graph substrate (CSR graphs, generators, exact ground
//!   truth for cycle containment).
//! * [`sim`] — the CONGEST model simulator (synchronous rounds,
//!   `O(log n)`-bit messages, congestion accounting).
//! * [`cycle`] — the paper's algorithms: Algorithm 1
//!   (`O(n^{1-1/k})`-round `C_{2k}`-freeness), Algorithm 2
//!   (congestion-reduced `randomized-color-BFS`), the odd-cycle and
//!   `F_{2k}` variants, the Density Lemma machinery, and the quantum
//!   pipeline of Theorem 2.
//! * [`quantum`] — Grover/amplitude-amplification simulation, distributed
//!   quantum search (Lemma 8), Monte-Carlo amplification (Theorem 3),
//!   network decomposition (Lemmas 9–10).
//! * [`baselines`] — the Table 1 comparators ([10], [15], [16], [30],
//!   [33]).
//! * [`lowerbounds`] — the Set-Disjointness reductions of §3.3.
//! * [`registry`] — every implemented algorithm behind the unified
//!   [`Detector`] trait, enumerable by `(model, target, k)`.
//! * [`scenario`] — the data-driven measurement runner
//!   (`family × detector × bandwidth × seed-sweep → ScenarioReport`).
//! * [`engine`] — the parallel experiment engine behind the scenario
//!   runner: worker-pool sweep execution (byte-identical to
//!   sequential), `paper-exact`/`practical`/`fast-ci` run profiles,
//!   hard budget enforcement, and a resumable JSONL result store
//!   keyed by [`FamilySpec`] fingerprints. The `sweep` binary drives
//!   it from the command line.
//! * [`suite`] — whole campaigns as data: line-oriented suite files
//!   (`family=...; sizes=...; seeds=...; detectors=...` per stanza,
//!   where `family=` may list several specs and expands to the cross
//!   product) resolved against a run profile and executed through one
//!   shared engine pass (`sweep --suite`).
//! * [`stream`] — the streaming subsystem: [`StreamScenario`] replays a
//!   seeded, fingerprintable
//!   [`UpdateSchedule`](congest_graph::UpdateSchedule) against
//!   registered detectors, checkpoint verdicts are content-addressed
//!   work units (re-running an unchanged stream invokes zero
//!   detectors), and [`serve`] exposes the whole thing as a long-lived
//!   line-oriented TCP service over named mutable snapshots (the
//!   `serve` binary).
//! * [`telemetry`] — std-only structured telemetry: process-global
//!   counters/gauges/histograms, RAII spans behind a swappable
//!   [`Recorder`](telemetry::Recorder), JSONL event sinks
//!   (`sweep --trace`, `EVEN_CYCLE_TRACE`), Chrome trace_event
//!   conversion, and Prometheus exposition (the server's `metrics`
//!   op). Result-invariant by contract: recording changes no report
//!   or store byte, and the disabled path costs one relaxed atomic
//!   load.
//!
//! # Quickstart — the unified `Detector` API
//!
//! Every algorithm (the paper's and the baselines') answers through one
//! interface: `detect(&graph, seed, &budget) → Result<Detection>`, where
//! a [`Detection`](cycle::Detection) carries the verdict (with a
//! validated cycle witness on rejection), the unified run cost, and the
//! algorithm's metadata.
//!
//! ```
//! use even_cycle_congest::graph::generators;
//! use even_cycle_congest::cycle::{Budget, CycleDetector, Detector, Params};
//!
//! // A random tree with a planted 4-cycle.
//! let host = generators::random_tree(64, 7);
//! let (g, planted) = generators::plant_cycle(&host, 4, 7);
//!
//! let detector = CycleDetector::new(Params::practical(2));
//! let detection = detector.detect(&g, 42, &Budget::classical()).unwrap();
//! assert!(detection.rejected(), "the planted C4 must be detected");
//! let witness = detection.witness().expect("rejections carry witnesses");
//! assert!(witness.is_valid(&g));
//! assert!(detection.cost.rounds > 0);
//! # let _ = planted;
//! ```
//!
//! To compare *all* algorithms on the same instance, iterate the
//! [`registry`](registry::DetectorRegistry) instead of naming types:
//!
//! ```
//! use even_cycle_congest::registry::DetectorRegistry;
//! use even_cycle_congest::cycle::Budget;
//! use even_cycle_congest::graph::generators;
//!
//! let g = generators::random_tree(32, 1); // cycle-free control
//! for entry in DetectorRegistry::standard(2).iter() {
//!     let d = entry.detector.detect(&g, 7, &Budget::classical()).unwrap();
//!     assert!(!d.rejected(), "{}: one-sided error violated", entry.id);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod registry;
pub mod scenario;
pub mod serve;
pub mod stream;
pub mod suite;

pub use congest_baselines as baselines;
pub use congest_graph as graph;
pub use congest_lowerbounds as lowerbounds;
pub use congest_quantum as quantum;
pub use congest_sim as sim;
pub use congest_telemetry as telemetry;
pub use even_cycle as cycle;

pub use congest_graph::{FamilySpec, MutableGraph, UpdateSchedule};
pub use engine::{
    Engine, RunProfile, Schedule, ScheduleOrder, StreamOutcome, StreamSuiteOutcome, SuiteOutcome,
};
pub use even_cycle::{Budget, Descriptor, Detection, Detector, Model, RunCost, Target, Verdict};
pub use registry::DetectorRegistry;
pub use scenario::{GraphFamily, Metric, Scenario, ScenarioReport};
pub use serve::{ServeConfig, Server};
pub use stream::{StreamReport, StreamScenario};
pub use suite::{PreparedSuite, Suite};
