//! Even-cycle detection in the randomized and quantum CONGEST model.
//!
//! Facade crate re-exporting the whole workspace — the reproduction of
//! Fraigniaud, Luce, Magniez, Todinca, *Even-Cycle Detection in the
//! Randomized and Quantum CONGEST Model*, PODC 2024 (arXiv:2402.12018).
//!
//! * [`graph`] — graph substrate (CSR graphs, generators, exact ground
//!   truth for cycle containment).
//! * [`sim`] — the CONGEST model simulator (synchronous rounds,
//!   `O(log n)`-bit messages, congestion accounting).
//! * [`cycle`] — the paper's algorithms: Algorithm 1
//!   (`O(n^{1-1/k})`-round `C_{2k}`-freeness), Algorithm 2
//!   (congestion-reduced `randomized-color-BFS`), the odd-cycle and
//!   `F_{2k}` variants, the Density Lemma machinery, and the quantum
//!   pipeline of Theorem 2.
//! * [`quantum`] — Grover/amplitude-amplification simulation, distributed
//!   quantum search (Lemma 8), Monte-Carlo amplification (Theorem 3),
//!   network decomposition (Lemmas 9–10).
//! * [`baselines`] — the Table 1 comparators ([10], [15], [16], [30],
//!   [33]).
//! * [`lowerbounds`] — the Set-Disjointness reductions of §3.3.
//!
//! # Quickstart
//!
//! ```
//! use even_cycle_congest::graph::generators;
//! use even_cycle_congest::cycle::{CycleDetector, Params};
//!
//! // A random tree with a planted 4-cycle.
//! let host = generators::random_tree(64, 7);
//! let (g, planted) = generators::plant_cycle(&host, 4, 7);
//!
//! let detector = CycleDetector::new(Params::practical(2));
//! let outcome = detector.run(&g, 42);
//! assert!(outcome.rejected(), "the planted C4 must be detected");
//! let witness = outcome.witness().expect("rejections carry witnesses");
//! assert!(witness.is_valid(&g));
//! # let _ = planted;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congest_baselines as baselines;
pub use congest_graph as graph;
pub use congest_lowerbounds as lowerbounds;
pub use congest_quantum as quantum;
pub use congest_sim as sim;
pub use even_cycle as cycle;
