//! The detector registry: every algorithm of Table 1 that this
//! workspace implements, enumerable as boxed [`Detector`]s by
//! `(model, target, k)`.
//!
//! The registry is what makes the benchmark harness, the integration
//! tests, and the examples data-driven: instead of hand-wiring each
//! algorithm's constructor and outcome type, callers iterate entries
//! and call [`Detector::detect`] through one interface.
//!
//! ```
//! use even_cycle_congest::registry::DetectorRegistry;
//! use even_cycle_congest::cycle::{Budget, Model};
//! use even_cycle_congest::graph::generators;
//!
//! let registry = DetectorRegistry::standard(2);
//! assert!(registry.len() >= 8);
//! let host = generators::random_tree(40, 7);
//! let (g, _) = generators::plant_cycle(&host, 4, 7);
//! for entry in registry.by_model(Model::Classical) {
//!     // Every entry answers through the same surface.
//!     let detection = entry.detector.detect(&g, 1, &Budget::classical()).unwrap();
//!     assert_eq!(detection.algorithm.model, Model::Classical);
//! }
//! ```

use congest_baselines::apeldoorn_devos::ApeldoornDeVosDetector;
use congest_baselines::censor_hillel::LocalThresholdDetector;
use congest_baselines::deterministic::GatherDetector;
use congest_baselines::eden::EdenModel;
use even_cycle::{
    CycleDetector, Descriptor, Detector, F2kDetector, Model, OddCycleDetector, Params,
    QuantumCycleDetector, QuantumF2kDetector, QuantumOddCycleDetector, Target,
};

use crate::engine::RunProfile;

/// One registered algorithm: its metadata and the boxed detector.
pub struct RegistryEntry {
    /// Stable identifier (`model/target/name`).
    pub id: String,
    /// The algorithm's static metadata.
    pub descriptor: Descriptor,
    /// The boxed detector.
    pub detector: Box<dyn Detector>,
}

impl std::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("id", &self.id)
            .field("descriptor", &self.descriptor)
            .finish_non_exhaustive()
    }
}

/// All implemented detectors applicable at a family parameter `k`.
#[derive(Debug)]
pub struct DetectorRegistry {
    k: usize,
    profile: RunProfile,
    entries: Vec<RegistryEntry>,
}

impl DetectorRegistry {
    /// Builds the standard registry at family parameter `k ≥ 2`: the
    /// paper's three classical detectors (`C_{2k}`, `C_{2k+1}`,
    /// `F_{2k}`), their three quantum pipelines, and the Table 1
    /// comparators whose applicability constraints admit this `k`
    /// ([10] needs `k ≤ 5`, [16] needs `k ≥ 3`; the deterministic
    /// gather baseline registers for both parities).
    ///
    /// This is the [`RunProfile::Practical`] configuration — see
    /// [`DetectorRegistry::with_profile`] for the knob and the
    /// `paper-exact` / `fast-ci` alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn standard(k: usize) -> Self {
        DetectorRegistry::with_profile(k, RunProfile::Practical)
    }

    /// Builds the registry for an explicit [`RunProfile`] — the knob
    /// that decides repetition budgets, Grover modes, and
    /// declared-success shortcuts (see the profile docs). The entry
    /// *set* is identical across profiles (same ids, same Table 1
    /// rows); only the configurations differ, so reports from
    /// different profiles line up row by row.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn with_profile(k: usize, profile: RunProfile) -> Self {
        assert!(k >= 2, "the registry needs k ≥ 2");
        let mut entries: Vec<Box<dyn Detector>> = match profile {
            // The paper's constants verbatim: uncapped K, Lemma-bound
            // success probabilities (no declared-success shortcuts),
            // sampled Grover only because exhaustive seed scans are not
            // simulable at any size. Expensive by design.
            RunProfile::PaperExact => {
                let qmode = congest_quantum::GroverMode::Sampled { samples: 64 };
                vec![
                    Box::new(CycleDetector::new(Params::paper(k, 1.0 / 3.0))),
                    Box::new(OddCycleDetector::new(k, 400)),
                    Box::new(F2kDetector::new(k)),
                    Box::new(
                        QuantumCycleDetector::new(Params::paper(k, 1.0 / 3.0), 0.05)
                            .with_mode(qmode),
                    ),
                    Box::new(QuantumOddCycleDetector::new(k, 200, 0.05).with_mode(qmode)),
                    Box::new(QuantumF2kDetector::new(k, 100, 0.05).with_mode(qmode)),
                    Box::new(GatherDetector::new(2 * k)),
                    Box::new(GatherDetector::new(2 * k + 1)),
                    Box::new(ApeldoornDeVosDetector::new(k, 40)),
                ]
            }
            // The experiment profile the unit tests and Table 1
            // drivers use: practical repetition caps and
            // declared-success shortcuts that keep the quantum seed
            // spaces simulable. At `k = 2` the quantum pipelines use
            // analytic Grover over the declared seed space (strong
            // enough to actually find planted cycles at test sizes);
            // for `k ≥ 3` they switch to sampled Grover, since the
            // well-coloring probability `(2k)^{-2k}` makes exhaustive
            // seed scans pay simulation cost for detections that
            // cannot happen at these sizes anyway.
            RunProfile::Practical => {
                let qmode = if k == 2 {
                    congest_quantum::GroverMode::Analytic
                } else {
                    congest_quantum::GroverMode::Sampled { samples: 32 }
                };
                vec![
                    Box::new(CycleDetector::new(Params::practical(k))),
                    Box::new(OddCycleDetector::new(k, 200)),
                    Box::new(F2kDetector::new(k)),
                    Box::new(
                        QuantumCycleDetector::new(Params::practical(k).with_repetitions(24), 0.1)
                            .with_declared_success(1.0 / 256.0)
                            .with_mode(qmode),
                    ),
                    Box::new(
                        QuantumOddCycleDetector::new(k, 60, 0.1)
                            .with_declared_success(1.0 / 64.0)
                            .with_mode(qmode),
                    ),
                    Box::new(
                        QuantumF2kDetector::new(k, 40, 0.1)
                            .with_declared_success(1.0 / 128.0)
                            .with_mode(qmode),
                    ),
                    Box::new(GatherDetector::new(2 * k)),
                    Box::new(GatherDetector::new(2 * k + 1)),
                    Box::new(ApeldoornDeVosDetector::new(k, 40)),
                ]
            }
            // Smoke configuration: everything small and sampled, sized
            // so the whole registry sweeps a tiny grid inside a CI
            // step.
            RunProfile::FastCi => {
                let qmode = congest_quantum::GroverMode::Sampled { samples: 8 };
                vec![
                    Box::new(CycleDetector::new(Params::practical(k).with_repetitions(8))),
                    Box::new(OddCycleDetector::new(k, 40)),
                    Box::new(F2kDetector::new(k).with_repetitions(4)),
                    Box::new(
                        QuantumCycleDetector::new(Params::practical(k).with_repetitions(8), 0.1)
                            .with_declared_success(1.0 / 64.0)
                            .with_mode(qmode),
                    ),
                    Box::new(
                        QuantumOddCycleDetector::new(k, 20, 0.1)
                            .with_declared_success(1.0 / 32.0)
                            .with_mode(qmode),
                    ),
                    Box::new(
                        QuantumF2kDetector::new(k, 12, 0.1)
                            .with_declared_success(1.0 / 64.0)
                            .with_mode(qmode),
                    ),
                    Box::new(GatherDetector::new(2 * k)),
                    Box::new(GatherDetector::new(2 * k + 1)),
                    Box::new(ApeldoornDeVosDetector::new(k, 8)),
                ]
            }
        };
        if (2..=5).contains(&k) {
            entries.push(match profile {
                RunProfile::FastCi => {
                    Box::new(LocalThresholdDetector::new(k).with_attempts(1.0, 512))
                }
                _ => Box::new(LocalThresholdDetector::new(k)),
            });
        }
        if k >= 3 {
            entries.push(Box::new(EdenModel::new(k)));
        }
        let entries = entries
            .into_iter()
            .map(|detector| {
                let descriptor = detector.descriptor();
                RegistryEntry {
                    id: descriptor.id(),
                    descriptor,
                    detector,
                }
            })
            .collect();
        DetectorRegistry {
            k,
            profile,
            entries,
        }
    }

    /// The family parameter this registry was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The profile this registry was built with.
    pub fn profile(&self) -> RunProfile {
        self.profile
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// The entries running in the given model.
    pub fn by_model(&self, model: Model) -> Vec<&RegistryEntry> {
        self.entries
            .iter()
            .filter(|e| e.descriptor.model == model)
            .collect()
    }

    /// The entries deciding the given target family.
    pub fn by_target(&self, target: Target) -> Vec<&RegistryEntry> {
        self.entries
            .iter()
            .filter(|e| e.descriptor.target == target)
            .collect()
    }

    /// The first entry matching `(model, target)`, if any.
    pub fn find(&self, model: Model, target: Target) -> Option<&RegistryEntry> {
        self.entries
            .iter()
            .find(|e| e.descriptor.model == model && e.descriptor.target == target)
    }

    /// Looks an entry up by its stable id.
    pub fn get(&self, id: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (never true for
    /// [`DetectorRegistry::standard`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_k2_has_the_core_and_baseline_rows() {
        let r = DetectorRegistry::standard(2);
        // 9 always + local threshold (k ≤ 5), no Eden (k < 3).
        assert_eq!(r.len(), 10);
        assert!(r.find(Model::Classical, Target::Even { k: 2 }).is_some());
        assert!(r.find(Model::Quantum, Target::Even { k: 2 }).is_some());
        assert!(r.find(Model::Quantum, Target::F2k { k: 2 }).is_some());
        assert!(r.find(Model::Classical, Target::Odd { k: 2 }).is_some());
    }

    #[test]
    fn standard_k3_adds_eden_k6_drops_local_threshold() {
        let r3 = DetectorRegistry::standard(3);
        assert_eq!(r3.len(), 11);
        let r6 = DetectorRegistry::standard(6);
        // No [10] beyond k = 5.
        assert_eq!(r6.len(), 10);
        assert!(r6.iter().all(|e| e.descriptor.reference != "[10]"));
    }

    #[test]
    fn ids_are_unique_and_resolvable() {
        let r = DetectorRegistry::standard(3);
        let mut ids: Vec<&str> = r.iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate registry ids");
        for e in r.iter() {
            assert!(r.get(&e.id).is_some());
        }
    }

    #[test]
    fn profiles_share_the_entry_set() {
        // Same ids in the same order whatever the profile, so reports
        // line up row by row across profiles.
        for k in [2usize, 3] {
            let ids = |p| -> Vec<String> {
                DetectorRegistry::with_profile(k, p)
                    .iter()
                    .map(|e| e.id.clone())
                    .collect()
            };
            let practical = ids(RunProfile::Practical);
            assert_eq!(practical, ids(RunProfile::PaperExact), "k = {k}");
            assert_eq!(practical, ids(RunProfile::FastCi), "k = {k}");
        }
        assert_eq!(
            DetectorRegistry::standard(2).profile(),
            RunProfile::Practical
        );
    }

    #[test]
    fn models_partition_the_registry() {
        let r = DetectorRegistry::standard(2);
        let c = r.by_model(Model::Classical).len();
        let q = r.by_model(Model::Quantum).len();
        assert_eq!(c + q, r.len());
        assert!(c >= 5 && q >= 3);
    }
}
