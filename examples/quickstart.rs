//! Quickstart: detect a planted 4-cycle through the unified `Detector`
//! API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use even_cycle_congest::cycle::{Budget, CycleDetector, Detector, Params};
use even_cycle_congest::graph::{analysis, generators};

fn main() {
    // A sparse host (a random tree — certifiably C4-free) with one
    // planted C4.
    let host = generators::random_tree(256, 42);
    let (graph, planted) = generators::plant_cycle(&host, 4, 42);
    println!(
        "input: n = {}, m = {}, planted cycle = {planted}",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "ground truth: girth = {:?}",
        analysis::girth(&graph).expect("a cycle was planted")
    );

    // Algorithm 1 for C4-freeness (k = 2), practical profile, driven
    // through the one interface every detector shares.
    let detector = CycleDetector::new(Params::practical(2));
    let about = detector.descriptor();
    println!(
        "algorithm: {} ({}), target {}, theory exponent n^{:.3}",
        about.name,
        about.reference,
        about.target.label(),
        about.exponent
    );

    let detection = detector
        .detect(&graph, 7, &Budget::classical())
        .expect("color-BFS simulation cannot fail");

    match detection.witness() {
        Some(witness) => {
            println!("REJECT — certified 4-cycle: {witness}");
            assert!(witness.is_valid(&graph));
            println!(
                "  found after {} coloring iteration(s)",
                detection.cost.iterations
            );
        }
        None => println!("ACCEPT — no C4 found (this run missed the planted cycle)"),
    }
    println!(
        "cost: {} CONGEST rounds over {} supersteps, {} messages, max {} words on any edge in a round",
        detection.cost.rounds,
        detection.cost.supersteps,
        detection.cost.messages,
        detection.cost.max_congestion
    );
    println!(
        "theory: Theorem 1 bound K*k*tau = {:.0} rounds at this n",
        detector.params().round_bound(graph.node_count())
    );
}
