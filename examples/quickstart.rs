//! Quickstart: detect a planted 4-cycle with Algorithm 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use even_cycle_congest::cycle::{CycleDetector, Params};
use even_cycle_congest::graph::{analysis, generators};

fn main() {
    // A sparse host (a random tree — certifiably C4-free) with one
    // planted C4.
    let host = generators::random_tree(256, 42);
    let (graph, planted) = generators::plant_cycle(&host, 4, 42);
    println!(
        "input: n = {}, m = {}, planted cycle = {planted}",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "ground truth: girth = {:?}",
        analysis::girth(&graph).expect("a cycle was planted")
    );

    // Algorithm 1 for C4-freeness (k = 2), practical profile.
    let params = Params::practical(2);
    println!(
        "parameters: k = {}, eps = {:.3}, K = {} repetitions",
        params.k, params.eps, params.repetitions
    );
    let detector = CycleDetector::new(params);
    let outcome = detector.run(&graph, 7);

    if outcome.rejected() {
        let witness = outcome.witness().expect("rejections carry witnesses");
        println!("REJECT — certified 4-cycle: {witness}");
        println!(
            "  detected by the {:?} color-BFS after {} coloring iteration(s)",
            outcome.phase.expect("phase recorded"),
            outcome.iterations
        );
    } else {
        println!("ACCEPT — no C4 found (this run missed the planted cycle)");
    }
    println!(
        "cost: {} CONGEST rounds over {} supersteps (max {} words on any edge in a round)",
        outcome.report.rounds,
        outcome.report.supersteps,
        outcome.report.congestion.max_words_per_edge_step
    );
    println!(
        "sets: |U| = {}, |S| = {}, |W| = {}, threshold tau = {}",
        outcome.sets.u_size, outcome.sets.s_size, outcome.sets.w_size, outcome.sets.tau
    );
    println!(
        "theory: Theorem 1 bound K*k*tau = {:.0} rounds at this n",
        detector.params().round_bound(graph.node_count())
    );
}
