//! Scenario: distributed detection of short dependency loops.
//!
//! A microservice mesh is a network where each service only talks to its
//! direct dependencies — exactly the CONGEST setting. Short *even*
//! dependency loops (mutual fallbacks, A→B→C→D→A) are a classic outage
//! amplifier; this example monitors a synthetic mesh for 4- and 6-loops
//! using the paper's detector, entirely via node-local message passing.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use even_cycle_congest::cycle::{CycleDetector, F2kDetector, Params};
use even_cycle_congest::graph::{analysis, Graph, GraphBuilder, NodeId};

/// A layered service mesh: `layers × width` services. The skeleton is a
/// tree (an API-gateway star over layer 0, then per-service chains down
/// the layers) — provably loop-free — plus "legacy" edges that may close
/// loops.
fn service_mesh(layers: usize, width: usize, legacy_edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(layers * width);
    let id = |layer: usize, i: usize| NodeId::new((layer * width + i) as u32);
    for i in 1..width {
        b.add_edge(id(0, 0), id(0, i)); // gateway fan-out
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            b.add_edge(id(layer, i), id(layer + 1, i)); // dependency chains
        }
    }
    for &(u, v) in legacy_edges {
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    b.build()
}

fn main() {
    let layers = 12;
    let width = 8;

    // The skeleton is a tree, so it is loop-free by construction; verify
    // with exact analysis:
    let clean = service_mesh(layers, width, &[]);
    println!(
        "clean mesh: n = {}, m = {}, girth = {:?}",
        clean.node_count(),
        clean.edge_count(),
        analysis::girth(&clean)
    );

    // Ship it... then someone adds two legacy fallback edges that close a
    // 4-loop between adjacent layers.
    let bad = service_mesh(layers, width, &[(8, 17), (9, 16)]);
    // Loop: 8 - 16 (chain), 16 - 9 (legacy), 9 - 17 (chain), 17 - 8
    // (legacy) — a 4-cycle across layers 1 and 2.
    println!(
        "after legacy edges: girth = {:?}",
        analysis::girth(&bad)
    );

    let detector = CycleDetector::new(Params::practical(2));
    for (name, mesh) in [("clean", &clean), ("patched", &bad)] {
        let outcome = detector.run(mesh, 2024);
        match outcome.witness() {
            Some(w) => println!(
                "[{name}] ALERT: dependency 4-loop {w} (found in {} rounds)",
                outcome.report.rounds
            ),
            None => println!(
                "[{name}] ok: no 4-loop (checked in {} rounds)",
                outcome.report.rounds
            ),
        }
    }

    // Sweep all loop lengths up to 6 with the F_{2k} detector (§3.5).
    let sweep = F2kDetector::new(3).with_repetitions(1500);
    let outcome = sweep.run(&bad, 9);
    match outcome.witness {
        Some(w) => println!(
            "loop sweep (lengths 3..=6): found C{} = {w} via pair l = {}",
            w.len(),
            outcome.pair.expect("pair recorded")
        ),
        None => println!("loop sweep (lengths 3..=6): nothing found"),
    }
}
