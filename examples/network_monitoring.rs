//! Scenario: distributed detection of short dependency loops.
//!
//! A microservice mesh is a network where each service only talks to its
//! direct dependencies — exactly the CONGEST setting. Short *even*
//! dependency loops (mutual fallbacks, A→B→C→D→A) are a classic outage
//! amplifier; this example monitors a synthetic mesh for short loops by
//! sweeping *every* registered detector through the unified `Detector`
//! trait — no per-algorithm wiring.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use even_cycle_congest::cycle::Budget;
use even_cycle_congest::engine::RunProfile;
use even_cycle_congest::graph::{analysis, Graph, GraphBuilder, NodeId};

/// A layered service mesh: `layers × width` services. The skeleton is a
/// tree (an API-gateway star over layer 0, then per-service chains down
/// the layers) — provably loop-free — plus "legacy" edges that may close
/// loops.
fn service_mesh(layers: usize, width: usize, legacy_edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(layers * width);
    let id = |layer: usize, i: usize| NodeId::new((layer * width + i) as u32);
    for i in 1..width {
        b.add_edge(id(0, 0), id(0, i)); // gateway fan-out
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            b.add_edge(id(layer, i), id(layer + 1, i)); // dependency chains
        }
    }
    for &(u, v) in legacy_edges {
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    b.build()
}

fn main() {
    let layers = 12;
    let width = 8;

    // The skeleton is a tree, so it is loop-free by construction; verify
    // with exact analysis:
    let clean = service_mesh(layers, width, &[]);
    println!(
        "clean mesh: n = {}, m = {}, girth = {:?}",
        clean.node_count(),
        clean.edge_count(),
        analysis::girth(&clean)
    );

    // Ship it... then someone adds two legacy fallback edges that close a
    // 4-loop between adjacent layers.
    let bad = service_mesh(layers, width, &[(8, 17), (9, 16)]);
    // Loop: 8 - 16 (chain), 16 - 9 (legacy), 9 - 17 (chain), 17 - 8
    // (legacy) — a 4-cycle across layers 1 and 2.
    println!("after legacy edges: girth = {:?}\n", analysis::girth(&bad));

    // Sweep the whole registry over both meshes. One-sidedness means the
    // clean mesh never alarms; on the patched mesh any detector that
    // fires hands back a certified loop.
    let registry = RunProfile::Practical.registry(2);
    let budget = Budget::classical();
    for (name, mesh) in [("clean", &clean), ("patched", &bad)] {
        println!("--- {name} mesh ---");
        for entry in registry.iter() {
            // A few seeds: the randomized detectors are one-sided, so
            // retries only ever help on yes-instances.
            let mut verdict = None;
            for seed in 0..4 {
                match entry.detector.detect(mesh, seed, &budget) {
                    Ok(d) if d.rejected() => {
                        verdict = Some(d);
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        println!("{:<44} simulation error: {e}", entry.id);
                        verdict = None;
                        break;
                    }
                }
            }
            match verdict.as_ref().and_then(|d| d.witness()) {
                Some(w) => {
                    assert!(w.is_valid(mesh), "witnesses must validate");
                    println!("{:<44} ALERT: dependency loop {w}", entry.id);
                }
                None => println!("{:<44} ok (no loop found)", entry.id),
            }
        }
        println!();
    }
}
