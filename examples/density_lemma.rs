//! The Density Lemma (Lemma 4) in action — a miniature of Figure 1.
//!
//! Builds an instance where the reachability sets `W₀(v)` exceed the
//! Lemma 7 bound, watches `IN(v, 0)` become non-empty, and extracts the
//! explicit `2k`-cycle through `S` that Lemma 6 promises.
//!
//! ```text
//! cargo run --release --example density_lemma
//! ```

use even_cycle_congest::cycle::sparsify::{
    layered_density_instance, DensityVerdict, Sparsification,
};

fn main() {
    // The Figure 1 regime: k = 5 (a 10-cycle), trigger at layer i = 2.
    let (graph, input, apex) = layered_density_instance(5, 2, 30, 4);
    println!(
        "instance: n = {}, m = {}, |S| = {}, |W0| = {}",
        graph.node_count(),
        graph.edge_count(),
        input.s_mask.iter().filter(|&&b| b).count(),
        input.w0_mask.iter().filter(|&&b| b).count()
    );

    let sp = Sparsification::new(&graph, input).expect("valid density input");
    println!("edges in E(S, W0): {}", sp.edge_count());
    println!("apex v = {apex} (layer 2, q = {})", sp.q_of(apex).unwrap());
    let nested = sp.nested_sets(apex);
    for (gamma, set) in nested.iter().enumerate() {
        println!("  |IN(v,{gamma})| = {}", set.len());
    }
    println!("  |IN(v)|   = {}", sp.in_set(apex).len());
    println!(
        "reachability |W0(v)| = {} vs Lemma 7 bound 2^(i-1)(k-1)|S| = {:.0}",
        sp.w0_reachable(apex).len(),
        sp.density_bound(apex).unwrap()
    );

    match sp
        .verdict()
        .expect("construction never fails on valid input")
    {
        DensityVerdict::CycleFound(w) => {
            println!();
            println!("Lemma 6 construction succeeded: {w}");
            println!(
                "  length = {} (= 2k), valid = {}",
                w.len(),
                w.is_valid(&graph)
            );
            let s_hits: Vec<_> = w.nodes().iter().filter(|u| u.index() < 30).collect();
            println!("  vertices in S: {s_hits:?} (the cycle provably meets S)");
        }
        DensityVerdict::BoundHolds { max_ratio } => {
            println!("no trigger (max ratio {max_ratio:.3}) — unexpected here");
        }
    }
}
