//! The quadratic quantum speedup of Theorem 3, measured.
//!
//! Amplifying a one-sided Monte-Carlo algorithm with success probability
//! `ε` costs `Θ(1/ε)` repetitions classically but only `Θ(1/√ε)` Grover
//! iterations quantumly. This example sweeps `ε` and prints both costs
//! for the same synthetic detector, then runs the full quantum pipeline
//! (Lemma 13) on a planted-cycle graph.
//!
//! ```text
//! cargo run --release --example quantum_speedup
//! ```

use even_cycle_congest::cycle::{Params, QuantumCycleDetector};
use even_cycle_congest::graph::generators;
use even_cycle_congest::quantum::{FnAlgorithm, McOutcome, MonteCarloAmplifier};

fn main() {
    println!("== Theorem 3: amplification cost vs success probability ==");
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "1/eps", "classical", "quantum", "speedup"
    );
    for exp in [6u32, 8, 10, 12, 14] {
        let inv_eps = 1u64 << exp;
        let alg = FnAlgorithm::new(
            move |seed| McOutcome {
                rejected: seed % inv_eps == 1,
                rounds: 1,
            },
            1,
            1.0 / inv_eps as f64,
        );
        // Oversample the seed space so "no marked seed landed in the
        // space" (probability e^{-c}) is negligible for the demo.
        let amp = MonteCarloAmplifier::new(0.1).with_seed_space_factor(8.0);
        let mut q = 0u64;
        let mut c = 0u64;
        let mut found = 0u64;
        let trials = 5;
        for master in 0..trials {
            let r = amp.amplify(&alg, master);
            if r.rejected {
                found += 1;
            }
            q += r.quantum_rounds;
            c += r.classical_rounds_baseline;
        }
        println!(
            "{:>10} {:>14} {:>14} {:>8.1}x   ({found}/{trials} found)",
            inv_eps,
            c / trials,
            q / trials,
            c as f64 / q as f64
        );
    }

    println!();
    println!("== Lemma 13: the full quantum C4 pipeline ==");
    let host = generators::random_tree(96, 11);
    let (graph, planted) = generators::plant_cycle(&host, 4, 11);
    println!("input: n = {}, planted {planted}", graph.node_count());
    let detector = QuantumCycleDetector::new(Params::practical(2).with_repetitions(64), 0.1)
        .with_declared_success(1.0 / 400.0);
    let outcome = detector.run(&graph, 5);
    println!(
        "decomposition: {} colors, {} components, {} rounds",
        outcome.colors, outcome.components, outcome.decomposition_rounds
    );
    match &outcome.witness {
        Some(w) => println!("REJECT — certified 4-cycle {w}"),
        None => println!("ACCEPT (missed the planted cycle this run)"),
    }
    println!(
        "quantum rounds: {} (classical amplification of the same detector: {} — {:.1}x)",
        outcome.quantum_rounds,
        outcome.classical_rounds,
        outcome.classical_rounds as f64 / outcome.quantum_rounds.max(1) as f64
    );
    println!(
        "Grover iterations: {}, simulator-side classical runs: {}",
        outcome.iterations, outcome.classical_evals
    );
}
