//! The Set-Disjointness reduction of §3.3, end to end.
//!
//! Builds the C4 gadget over a polarity graph, shows the iff-property
//! (cycle ⇔ intersecting sets), runs Algorithm 1 on the gadget with a
//! cut meter, and prints the implied lower bounds.
//!
//! ```text
//! cargo run --release --example lower_bound_gadget
//! ```

use even_cycle_congest::cycle::Params;
use even_cycle_congest::graph::analysis;
use even_cycle_congest::lowerbounds::disjointness::Disjointness;
use even_cycle_congest::lowerbounds::gadgets::C4Gadget;
use even_cycle_congest::lowerbounds::reduction::measure_even_detection;
use even_cycle_congest::lowerbounds::theory;

fn main() {
    let gadget = C4Gadget::new(7); // base ER_7: 57 vertices
    println!(
        "C4 gadget over ER_7: universe N = {} elements, {} gadget vertices",
        gadget.universe(),
        gadget.node_count()
    );

    // The iff-property on both kinds of instances.
    let disjoint = Disjointness::random_disjoint(gadget.universe(), 3);
    let built = gadget.build(&disjoint);
    println!(
        "disjoint sets  -> C4 present: {}",
        analysis::has_cycle_exact(&built.graph, 4, None)
    );
    let (intersecting, elem) = Disjointness::random_with_planted_intersection(gadget.universe(), 3);
    let built_yes = gadget.build(&intersecting);
    println!(
        "common element {elem} -> C4 present: {}",
        analysis::has_cycle_exact(&built_yes.graph, 4, None)
    );

    // Run the detector on the intersecting gadget, metering the cut.
    let params = Params::practical(2).with_repetitions(128);
    let m = measure_even_detection(&built_yes, &params, 128, 1);
    println!();
    println!(
        "detector on the gadget: rejected = {}, rounds = {}, cut crossings = {} words ({} bits)",
        m.rejected,
        m.rounds,
        m.cut_words,
        m.cut_bits()
    );
    println!(
        "two-party protocol bound T*cut*log n = {} bits vs universe N = {}",
        m.protocol_bound(),
        gadget.universe()
    );

    let n = built_yes.graph.node_count();
    println!();
    println!("implied round lower bounds at n = {n}:");
    println!(
        "  classical: T >= N/(cut*log n)      = {:>8.1}",
        theory::implied_classical_round_bound(gadget.universe(), built_yes.cut_size, n)
    );
    println!(
        "  quantum:   T >= sqrt(N/(cut*log n)) = {:>8.1}",
        theory::implied_quantum_round_bound(gadget.universe(), built_yes.cut_size, n)
    );
    println!(
        "  paper Omega~(n^1/4) for C4 at this n: {:>8.1}",
        theory::c4_quantum_lower_bound(n)
    );
}
