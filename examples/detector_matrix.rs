//! The whole Table 1 on one instance family, in a few lines: the
//! detector registry × the scenario runner.
//!
//! Declares a workload (planted C4s on sparse hosts, a size ladder, a
//! seed sweep, a bandwidth) and runs every registered algorithm through
//! it, printing fitted scaling exponents next to each row's theoretical
//! one. Changing the family, metric, or bandwidth is a one-line edit —
//! that is the point of the unified `Detector` API.
//!
//! ```text
//! cargo run --release --example detector_matrix
//! ```

use even_cycle_congest::cycle::Budget;
use even_cycle_congest::engine::RunProfile;
use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};

fn main() {
    let registry = RunProfile::Practical.registry(2);
    println!("registered detectors at k = 2:");
    for entry in registry.iter() {
        println!(
            "  {:<44} {} / {}  theory n^{:.3}",
            entry.id,
            entry.descriptor.model.label(),
            entry.descriptor.target.label(),
            entry.descriptor.exponent
        );
    }
    println!();

    // One declarative workload, every algorithm.
    let scenario = Scenario::new("planted C4 sweep", GraphFamily::planted_cycle(4))
        .sizes(&[48, 96, 192])
        .seeds(0..2)
        .metric(Metric::Rounds);
    println!("{}", scenario.run_registry(&registry).render());

    // The same matrix at bandwidth 4 — CONGEST(4 log n) — is one line.
    let wide = Scenario::new("planted C4 sweep, B = 4", GraphFamily::planted_cycle(4))
        .sizes(&[48, 96, 192])
        .seeds(0..2)
        .budget(Budget::classical().with_bandwidth(4))
        .metric(Metric::Rounds);
    println!("{}", wide.run_registry(&registry).render());
}
